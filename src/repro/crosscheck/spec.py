"""Serializable crosscheck case specifications.

A *case* is a pure-JSON description of one differential test: base-table
schemas + initial rows, a view plan, and a stream of modification
batches.  Keeping cases as data (rather than closures) is what makes the
fuzzer's output durable — a failing case shrinks by editing the spec and
lands in ``tests/regressions/`` as a replayable file.

Spec layout::

    {
      "version": 1,
      "tables": [
        {"name": "t0", "columns": ["k", "c0"], "key": ["k"],
         "rows": [[0, 5], [1, null]]}
      ],
      "foreign_keys": [["t1", ["r0"], "t0"]],
      "plan": {"op": "scan", "table": "t0", "alias": "s0"},
      "batches": [
        [{"op": "insert", "table": "t0", "row": [2, 7]},
         {"op": "update", "table": "t0", "key": [0], "changes": {"c0": 9}},
         {"op": "delete", "table": "t0", "key": [1]}]
      ]
    }

Plan nodes are ``{"op": ...}`` dicts (scan/select/project/join/antijoin/
union/groupby); predicates are nested tagged lists (``["cmp", "<",
["col", "a"], ["lit", 5]]``).  Everything survives a JSON round trip:
only str/int/float/bool/None values are allowed.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..algebra import (
    AntiJoin,
    PlanNode,
    UnionAll,
    equi_join,
    group_by,
    project_columns,
    scan,
    where,
)
from ..errors import PlanError
from ..expr import And, Cmp, Col, Expr, InList, Lit, Not, Or, all_of, col, lit
from ..storage import Database

SPEC_VERSION = 1


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
def expr_from_spec(spec: Sequence) -> Expr:
    """Decode a tagged-list predicate spec into an :class:`Expr`."""
    tag = spec[0]
    if tag == "col":
        return col(spec[1])
    if tag == "lit":
        return lit(spec[1])
    if tag == "cmp":
        return Cmp(spec[1], expr_from_spec(spec[2]), expr_from_spec(spec[3]))
    if tag == "and":
        return And([expr_from_spec(s) for s in spec[1:]])
    if tag == "or":
        return Or([expr_from_spec(s) for s in spec[1:]])
    if tag == "not":
        return Not(expr_from_spec(spec[1]))
    if tag == "in":
        return InList(expr_from_spec(spec[1]), tuple(spec[2]))
    raise PlanError(f"unknown expression spec tag {tag!r}")


def expr_to_spec(expr: Expr) -> list:
    """Inverse of :func:`expr_from_spec` (for the node types it emits)."""
    if isinstance(expr, Lit):
        return ["lit", expr.value]
    if isinstance(expr, Cmp):
        return ["cmp", expr.op, expr_to_spec(expr.left), expr_to_spec(expr.right)]
    if isinstance(expr, And):
        return ["and"] + [expr_to_spec(e) for e in expr.items]
    if isinstance(expr, Or):
        return ["or"] + [expr_to_spec(e) for e in expr.items]
    if isinstance(expr, Not):
        return ["not", expr_to_spec(expr.item)]
    if isinstance(expr, InList):
        return ["in", expr_to_spec(expr.item), list(expr.values)]
    if isinstance(expr, Col):
        return ["col", expr.name]
    raise PlanError(f"cannot serialize expression {expr!r}")


# ----------------------------------------------------------------------
# databases
# ----------------------------------------------------------------------
def _column_values(spec: Mapping, case: Mapping) -> dict[str, list]:
    """Every value each column of *spec*'s table will ever hold: initial
    rows plus the full modification stream.  The case is a closed world,
    so metadata inferred from this census is sound for the whole run."""
    columns = list(spec["columns"])
    values: dict[str, list] = {c: [] for c in columns}
    for row in spec["rows"]:
        for c, v in zip(columns, row):
            values[c].append(v)
    for batch in case.get("batches", []):
        for op in batch:
            if op.get("table") != spec["name"]:
                continue
            if op["op"] == "insert":
                for c, v in zip(columns, op["row"]):
                    values[c].append(v)
            elif op["op"] == "update":
                for c, v in op["changes"].items():
                    values[c].append(v)
    return values


def infer_table_metadata(spec: Mapping, case: Mapping) -> tuple[list, dict]:
    """(nullable, types) for one table spec, from the value census.

    A column is nullable iff a NULL actually occurs; it gets a type iff
    every non-NULL value agrees on one.  ``bool`` is checked before
    ``int`` (Python bools are ints).
    """
    key = set(spec["key"])
    nullable = []
    types = {}
    for column, values in _column_values(spec, case).items():
        if column not in key and any(v is None for v in values):
            nullable.append(column)
        observed = {
            "bool" if isinstance(v, bool) else type(v).__name__
            for v in values
            if v is not None
        }
        if len(observed) == 1 and (only := observed.pop()) in (
            "int",
            "float",
            "str",
            "bool",
        ):
            types[column] = only
    return nullable, types


def build_database(case: Mapping) -> Database:
    """Fresh live database for one case (each strategy gets its own).

    Nullability/type metadata comes from explicit ``"nullable"`` /
    ``"types"`` spec keys when present (the fuzzer emits them), and from
    :func:`infer_table_metadata` otherwise (hand-written corpus cases).
    """
    db = Database()
    for spec in case["tables"]:
        inferred = None
        nullable = spec.get("nullable")
        types = spec.get("types")
        if nullable is None or types is None:
            inferred = infer_table_metadata(spec, case)
        table = db.create_table(
            spec["name"],
            spec["columns"],
            spec["key"],
            nullable=inferred[0] if nullable is None else nullable,
            types=inferred[1] if types is None else types,
        )
        table.load(tuple(row) for row in spec["rows"])
    for child, columns, parent in case.get("foreign_keys", []):
        db.add_foreign_key(child, columns, parent)
    return db


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def build_plan(spec: Mapping, db: Database) -> PlanNode:
    """Instantiate a plan spec against *db* (fresh nodes every call)."""
    op = spec["op"]
    if op == "scan":
        return scan(db, spec["table"], alias=spec.get("alias"))
    if op == "select":
        return where(
            build_plan(spec["child"], db), expr_from_spec(spec["predicate"])
        )
    if op == "project":
        return project_columns(build_plan(spec["child"], db), spec["columns"])
    if op == "join":
        return equi_join(
            build_plan(spec["left"], db),
            build_plan(spec["right"], db),
            [tuple(pair) for pair in spec["on"]],
        )
    if op == "antijoin":
        condition = all_of(*[col(a).eq(col(b)) for a, b in spec["on"]])
        return AntiJoin(
            build_plan(spec["left"], db), build_plan(spec["right"], db), condition
        )
    if op == "union":
        return UnionAll(
            build_plan(spec["left"], db),
            build_plan(spec["right"], db),
            branch_column=spec.get("branch", "b"),
        )
    if op == "groupby":
        aggs = [
            (func, None if arg is None else col(arg), name)
            for func, arg, name in spec["aggs"]
        ]
        return group_by(build_plan(spec["child"], db), spec["keys"], aggs)
    raise PlanError(f"unknown plan spec op {op!r}")


def plan_tables(spec: Mapping) -> set[str]:
    """Base tables a plan spec reads."""
    op = spec["op"]
    if op == "scan":
        return {spec["table"]}
    out: set[str] = set()
    for key in ("child", "left", "right"):
        child = spec.get(key)
        if child is not None:
            out |= plan_tables(child)
    return out


# ----------------------------------------------------------------------
# modifications
# ----------------------------------------------------------------------
def apply_modification(log, op: Mapping) -> None:
    """Apply one modification spec through a :class:`ModificationLog`."""
    kind = op["op"]
    if kind == "insert":
        log.insert(op["table"], tuple(op["row"]))
    elif kind == "delete":
        log.delete(op["table"], tuple(op["key"]))
    elif kind == "update":
        log.update(op["table"], tuple(op["key"]), dict(op["changes"]))
    else:
        raise PlanError(f"unknown modification op {kind!r}")


def case_label(case: Mapping) -> str:
    """Short human-readable summary of a case spec."""
    n_mods = sum(len(batch) for batch in case.get("batches", []))
    n_rows = sum(len(t["rows"]) for t in case["tables"])
    return (
        f"{len(case['tables'])} tables / {n_rows} rows / "
        f"{len(case.get('batches', []))} batches ({n_mods} mods)"
    )
