"""Deterministic thousand-view catalog over the BSMA schema.

Production IVM installations maintain thousands of views over the same
handful of base tables; this module generates a catalog of that shape
for catalog-scale analysis (``repro lint --catalog``), the incremental
lint cache and the SHARE7xx sharing pass.  Everything derives from the
view *index* by plain arithmetic — no RNG, no ambient state — so the
same :class:`CatalogConfig` always yields byte-identical plans, labels
and order.

The catalog seeds controlled overlap:

* **overlap groups** (``gNNN_mK``) — ``group_size`` views per group
  that aggregate the *same* join sub-plan under different grouping
  keys/aggregates.  The generator materializes that shared sub-plan as
  each view's intermediate cache, so SHARE701 must flag every group.
* **duplicates** (``dupNNN``) — verbatim re-definitions of a group
  member under a new name (SHARE702 material).
* **subsumed views** (``subNNN``) — a selection/projection over a
  group's shared sub-plan (SHARE703 material).
* **fillers** (``fluNNN``/``flmNNN``/``flrNNN``/``flgNNN``) — distinct
  single-table σ/π (and the occasional γ) views that pad the catalog to
  ``n_views`` without adding overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algebra import (
    PlanNode,
    equi_join,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from .expr import all_of, col, lit
from .expr.ast import Cmp
from .storage import Database
from .workloads.bsma import BsmaConfig, build_database


@dataclass(frozen=True)
class CatalogConfig:
    """Shape of the generated catalog (defaults: the 1,000-view bed)."""

    n_views: int = 1000
    n_overlap_groups: int = 40
    group_size: int = 4
    n_duplicates: int = 12
    n_subsumed: int = 12
    #: base-database scale (kept small: the catalog exercises analysis,
    #: not execution)
    db_users: int = 24
    db_friends: int = 2
    db_tweets: int = 48


def build_catalog_database(config: CatalogConfig = CatalogConfig()) -> Database:
    """The shared BSMA base database all catalog views are defined over."""
    return build_database(
        BsmaConfig(
            n_users=config.db_users,
            friends_per_user=config.db_friends,
            n_tweets=config.db_tweets,
        )
    )


def _window(column: str, lo: int, hi: int):
    return all_of(
        Cmp(">=", col(column), lit(lo)), Cmp("<", col(column), lit(hi))
    )


def _shared_subplan(db: Database, group: int) -> PlanNode:
    """The join sub-plan shared by every member of overlap group *group*.

    Three structural families (by ``group % 3``) with group-dependent
    window literals, so distinct groups never collide.
    """
    lo = 100 + 13 * group
    hi = lo + 150 + 7 * (group % 5)
    family = group % 3
    blog = rename(
        scan(db, "microblog"),
        {"mid": "t_mid", "uid": "author", "ts": "t_ts", "topic": "t_topic"},
    )
    if family == 0:
        join = equi_join(scan(db, "mentions"), blog, [("mid", "t_mid")])
    elif family == 1:
        join = equi_join(scan(db, "retweets"), blog, [("mid", "t_mid")])
    else:
        join = equi_join(
            scan(db, "rel_event_microblog"), blog, [("mid", "t_mid")]
        )
    return where(join, _window("t_ts", lo, hi))


#: per-member γ shapes over a shared sub-plan: (keys, aggs) — keys come
#: from the microblog side, which every structural family exposes
_MEMBER_SHAPES = (
    (("author",), (("count", None, "cnt"),)),
    (("t_topic",), (("count", None, "cnt"), ("sum", "t_ts", "ts_total"))),
    (("author", "t_topic"), (("count", None, "cnt"),)),
    (("author",), (("sum", "t_ts", "ts_total"),)),
)


def _group_member(db: Database, group: int, member: int) -> PlanNode:
    keys, agg_specs = _MEMBER_SHAPES[member % len(_MEMBER_SHAPES)]
    aggs = [
        (func, col(arg) if arg is not None else None, name)
        for func, arg, name in agg_specs
    ]
    return group_by(_shared_subplan(db, group), keys, aggs)


def _subsumed_view(db: Database, index: int) -> PlanNode:
    sub = _shared_subplan(db, index)
    filtered = where(sub, Cmp(">=", col("author"), lit(3 + index % 7)))
    id_col = ("mnid", "rwid", "remid")[index % 3]
    return project_columns(filtered, (id_col, "mid", "author"))


def _filler_view(db: Database, index: int) -> tuple[str, PlanNode]:
    lo = 1000 + 3 * index
    hi = lo + 40 + index % 9
    family = index % 4
    if family == 0:
        plan = project_columns(
            where(scan(db, "microblog"), _window("ts", lo, hi)),
            (("mid", "uid"), ("mid", "topic"), ("mid", "uid", "ts"))[index % 3],
        )
        return f"flu{index:04d}", plan
    if family == 1:
        plan = where(
            scan(db, "users"), Cmp("=", col("city"), lit(index % 20))
        )
        # distinct fingerprints beyond the 20 cities: vary a second conjunct
        plan = where(plan, Cmp(">=", col("tweetsnum"), lit(index // 20)))
        return f"flm{index:04d}", plan
    if family == 2:
        plan = project_columns(
            where(scan(db, "retweets"), _window("rts", lo, hi)),
            ("rwid", "mid", "uid"),
        )
        return f"flr{index:04d}", plan
    plan = group_by(
        where(scan(db, "microblog"), _window("ts", lo, hi)),
        ("uid",),
        [("count", None, "tweets"), ("sum", col("ts"), "ts_total")],
    )
    return f"flg{index:04d}", plan


def catalog_views(
    db: Database, config: CatalogConfig = CatalogConfig()
) -> list[tuple[str, PlanNode]]:
    """The full deterministic catalog: ``[(label, plan), ...]``.

    Order is fixed (groups, duplicates, subsumed, fillers) and the list
    is truncated to ``config.n_views``.
    """
    views: list[tuple[str, PlanNode]] = []
    for group in range(config.n_overlap_groups):
        for member in range(config.group_size):
            views.append(
                (f"g{group:03d}_m{member}", _group_member(db, group, member))
            )
    for dup in range(config.n_duplicates):
        group = dup % max(1, config.n_overlap_groups)
        views.append((f"dup{dup:03d}", _group_member(db, group, 0)))
    for sub in range(config.n_subsumed):
        index = sub % max(1, config.n_overlap_groups)
        views.append((f"sub{sub:03d}", _subsumed_view(db, index)))
    filler = 0
    while len(views) < config.n_views:
        views.append(_filler_view(db, filler))
        filler += 1
    return views[: config.n_views]
