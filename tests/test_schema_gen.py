"""Tests for the base-table i-diff schema generator (paper Section 5)."""

from repro.core import annotate_plan, generate_base_schemas
from repro.core.diffs import DELETE, INSERT, UPDATE
from repro.core.schema_gen import conditional_attribute_groups
from repro.algebra import equi_join, group_by, rename, scan, where
from repro.expr import col, lit
from tests.conftest import build_view_v, build_view_v_prime


class TestConditionalGroups:
    def test_selection_attribute_is_conditional(self, running_example_db):
        plan = annotate_plan(build_view_v(running_example_db))
        groups = conditional_attribute_groups(plan)
        assert ("category",) in groups["devices"]

    def test_join_keys_not_conditional_for_updates(self, running_example_db):
        """Key attributes are immutable (footnote 7), so the natural-join
        equalities contribute no *update* schemas."""
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        update_targets = [
            (s.target, s.post_attrs) for s in schemas if s.kind == UPDATE
        ]
        assert ("parts", ("price",)) in update_targets
        assert ("devices", ("category",)) in update_targets
        # devices_parts has no non-key attributes: no update schema.
        assert all(t != "devices_parts" for t, _ in update_targets)

    def test_non_key_join_attribute_is_conditional(self, running_example_db):
        db = running_example_db
        db.create_table("s", ("sid", "ref"), ("sid",))
        plan = annotate_plan(
            equi_join(
                scan(db, "s"),
                rename(scan(db, "parts"), {"pid": "p_pid"}),
                [("ref", "p_pid")],
            )
        )
        groups = conditional_attribute_groups(plan)
        assert ("ref",) in groups["s"]


class TestGeneratedSchemas:
    def test_one_insert_and_delete_per_table(self, running_example_db):
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        inserts = [s for s in schemas if s.kind == INSERT]
        deletes = [s for s in schemas if s.kind == DELETE]
        assert {s.target for s in inserts} == {"devices", "parts", "devices_parts"}
        assert {s.target for s in deletes} == {"devices", "parts", "devices_parts"}

    def test_insert_schema_has_all_attrs_post(self, running_example_db):
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        parts_insert = next(
            s for s in schemas if s.kind == INSERT and s.target == "parts"
        )
        assert parts_insert.id_attrs == ("pid",)
        assert parts_insert.post_attrs == ("price",)

    def test_delete_schema_has_all_attrs_pre(self, running_example_db):
        """Pre-state values only ever help (Section 5)."""
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        devices_delete = next(
            s for s in schemas if s.kind == DELETE and s.target == "devices"
        )
        assert devices_delete.pre_attrs == ("category",)

    def test_update_schemas_have_full_pre(self, running_example_db):
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        for schema in schemas:
            if schema.kind == UPDATE:
                table = running_example_db.table(schema.target).schema
                assert schema.pre_attrs == table.non_key_columns

    def test_nc_group_for_unconditioned_attrs(self, running_example_db):
        """parts.price is non-conditional in V: one NC update schema."""
        plan = annotate_plan(build_view_v(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        parts_updates = [
            s for s in schemas if s.kind == UPDATE and s.target == "parts"
        ]
        assert [s.post_attrs for s in parts_updates] == [("price",)]

    def test_conditional_and_nc_groups_split(self, running_example_db):
        """In V', price feeds the aggregate but no condition; category is
        conditional — two separate update schemas for devices/parts."""
        db = running_example_db
        plan = annotate_plan(
            where(
                scan(db, "devices"),
                col("category").eq(lit("phone")),
            )
        )
        schemas = generate_base_schemas(plan, db)
        updates = [s for s in schemas if s.kind == UPDATE]
        assert [s.post_attrs for s in updates] == [("category",)]

    def test_multi_condition_table_gets_group_per_condition(self, running_example_db):
        db = running_example_db
        db.create_table("wide", ("k", "a", "b", "c"), ("k",))
        plan = annotate_plan(
            where(
                where(scan(db, "wide"), col("a").gt(lit(0))),
                col("b").lt(lit(9)),
            )
        )
        schemas = generate_base_schemas(plan, db)
        updates = {s.post_attrs for s in schemas if s.kind == UPDATE}
        # Per-condition groups, the NC rest, and the catch-all for
        # folded updates spanning groups.
        assert updates == {("a",), ("b",), ("c",), ("a", "b", "c")}

    def test_schemas_deduplicated(self, running_example_db):
        plan = annotate_plan(build_view_v_prime(running_example_db))
        schemas = generate_base_schemas(plan, running_example_db)
        signatures = [s.signature() for s in schemas]
        assert len(signatures) == len(set(signatures))
