"""Tests for the Section 6 analytical cost model."""

import pytest

from repro.costmodel import (
    AggCosts,
    SpjCosts,
    agg_general_speedup_bound,
    agg_insert_speedup,
    agg_update_speedup,
    estimate_a_for_chain,
    estimate_p_for_chain,
    spj_general_speedup_bound,
    spj_update_speedup,
    tuple_based_break_even_a,
)


class TestEquation1:
    def test_figure2_parameters(self):
        """The running example's P1 update: p = 2, a >= 3 (two joins)."""
        assert spj_update_speedup(a=6, p=2) == pytest.approx(10 / 3)

    def test_speedup_grows_with_a(self):
        values = [spj_update_speedup(a, 2.0) for a in (2, 5, 10, 50)]
        assert values == sorted(values)

    def test_parity_when_a_equals_one_minus_p(self):
        """The break-even boundary a = 1 - p (Section 6.1 corner case)."""
        p = 0.25
        a = tuple_based_break_even_a(p)
        assert spj_update_speedup(a, p) == pytest.approx(1.0)

    def test_tuple_based_wins_only_in_corner(self):
        # a < 1 requires shared join values; p << 1 requires severe
        # overestimation: only then does the ratio dip below 1.
        assert spj_update_speedup(a=0.2, p=0.1) < 1.0
        assert spj_update_speedup(a=1.0, p=0.1) > 1.0

    def test_general_bound_capped_at_one(self):
        assert spj_general_speedup_bound(a=50, p=2) == 1.0
        assert spj_general_speedup_bound(a=0.2, p=0.1) < 1.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            spj_update_speedup(-1, 2)


class TestEquation2:
    def test_never_below_parity(self):
        """Appendix A.2.1: a >= 1 + p, so the ratio is always >= 1."""
        for p in (0.5, 1, 2, 5):
            for extra in (0, 1, 5, 20):
                a = 1 + p + extra
                assert agg_update_speedup(a, p) >= 1.0

    def test_longer_chains_raise_speedup(self):
        p = 2.0
        values = [agg_update_speedup(1 + p + joins * 2 * p, p) for joins in range(1, 5)]
        assert values == sorted(values)

    def test_insert_regime_below_parity_but_bounded(self):
        s = agg_insert_speedup(a=5, p=2, g=1, k=3)
        assert s < 1.0
        # The loss is bounded: at most 1 extra access per inserted row.
        assert s >= 5 / (5 + 3 + 4)

    def test_general_bound(self):
        assert agg_general_speedup_bound(a=5, p=2, g=1, k=3) == pytest.approx(
            agg_insert_speedup(5, 2, 1, 3)
        )


class TestTableDataclasses:
    def test_spj_costs(self):
        costs = SpjCosts(diff_size=100, a=6, p=2)
        assert costs.id_based == 300
        assert costs.tuple_based == 1000
        assert costs.speedup == pytest.approx(spj_update_speedup(6, 2))

    def test_agg_costs(self):
        costs = AggCosts(diff_size=100, a=6, p=2, g=0.5)
        assert costs.id_based == 100 * (1 + 2 + 2)
        assert costs.tuple_based == 100 * (6 + 2)
        assert costs.speedup == pytest.approx(agg_update_speedup(6, 2, 0.5))


class TestChainEstimators:
    def test_single_join(self):
        # One join with fanout f: 1 lookup + f reads.
        assert estimate_a_for_chain([4]) == 5

    def test_chain_accumulates(self):
        # f1=4 then f2=1: 1+4 then 1+4 = 10.
        assert estimate_a_for_chain([4, 1]) == 10

    def test_p_estimate(self):
        assert estimate_p_for_chain([4, 1], selectivity=0.5) == pytest.approx(2.0)

    def test_matches_devices_defaults(self):
        """Fig. 11 defaults: f=10, s=20% -> p = 2 per updated part."""
        assert estimate_p_for_chain([10, 1], 0.2) == pytest.approx(2.0)
