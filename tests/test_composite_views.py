"""Deeply composed views: operator stacks the template pool doesn't cover.

Each view nests three or more operator layers (aggregates under unions,
antijoins over aggregates, selections over grouped semijoins, ...) and is
maintained through several mixed modification rounds against the
recomputation oracle.
"""

import pytest

from repro.algebra import (
    AntiJoin,
    Project,
    SemiJoin,
    UnionAll,
    equi_join,
    evaluate_plan,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from repro.core import IdIvmEngine
from repro.expr import col, lit
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.create_table("emp", ("eid", "dept", "salary"), ("eid",))
    db.create_table("dept", ("did", "region"), ("did",))
    db.create_table("bonus", ("bid", "b_eid", "amount"), ("bid",))
    db.table("emp").load(
        [
            (1, "eng", 100),
            (2, "eng", 120),
            (3, "sales", 90),
            (4, "sales", 80),
            (5, "hr", 70),
        ]
    )
    db.table("dept").load([("eng", "west"), ("sales", "east"), ("hr", "west")])
    db.table("bonus").load([(1, 1, 10), (2, 3, 5), (3, 3, 7)])
    return db


def union_of_aggregates(db):
    """Payroll per department from two salary bands, unioned."""
    low = group_by(
        where(scan(db, "emp"), col("salary").lt(lit(100))),
        ("dept",),
        [("sum", col("salary"), "payroll"), ("count", None, "heads")],
    )
    high = group_by(
        where(scan(db, "emp"), col("salary").ge(lit(100))),
        ("dept",),
        [("sum", col("salary"), "payroll"), ("count", None, "heads")],
    )
    return UnionAll(low, high)


def antijoin_over_aggregate(db):
    """Departments whose payroll has no employee earning a bonus."""
    payroll = group_by(
        scan(db, "emp"), ("dept",), [("sum", col("salary"), "payroll")]
    )
    bonused = project_columns(
        equi_join(
            scan(db, "bonus"),
            rename(scan(db, "emp"), {"eid": "e_eid", "dept": "e_dept", "salary": "e_sal"}),
            [("b_eid", "e_eid")],
        ),
        ("bid", "e_dept"),
    )
    return AntiJoin(payroll, bonused, col("dept").eq(col("e_dept")))


def selection_over_grouped_semijoin(db):
    """Well-paid bonused employees' departments, large groups only."""
    bonus_ref = rename(scan(db, "bonus"), {"b_eid": "ref_eid"})
    bonused_emps = SemiJoin(
        scan(db, "emp"), bonus_ref, col("eid").eq(col("ref_eid"))
    )
    grouped = group_by(
        bonused_emps, ("dept",), [("sum", col("salary"), "paid")]
    )
    return where(grouped, col("paid").gt(lit(50)))


def join_of_two_aggregates(db):
    """Department payroll next to department bonus totals."""
    payroll = group_by(
        scan(db, "emp"), ("dept",), [("sum", col("salary"), "payroll")]
    )
    bonus_by_dept = group_by(
        project_columns(
            equi_join(
                scan(db, "bonus"),
                rename(scan(db, "emp"), {"eid": "e2_eid", "dept": "e2_dept", "salary": "e2_sal"}),
                [("b_eid", "e2_eid")],
            ),
            ("bid", "amount", "e2_dept"),
        ),
        ("e2_dept",),
        [("sum", col("amount"), "bonus_total")],
    )
    return equi_join(payroll, bonus_by_dept, [("dept", "e2_dept")])


def projected_region_rollup(db):
    """Three levels: join, aggregate, computed projection."""
    staffed = equi_join(
        scan(db, "emp"),
        rename(scan(db, "dept"), {"did": "d_id"}),
        [("dept", "d_id")],
    )
    by_region = group_by(
        staffed, ("region",), [("sum", col("salary"), "total"), ("count", None, "n")]
    )
    return Project(
        by_region,
        [
            ("region", col("region")),
            ("avg_cost", col("total") / col("n")),
        ],
    )


COMPOSITES = [
    union_of_aggregates,
    antijoin_over_aggregate,
    selection_over_grouped_semijoin,
    join_of_two_aggregates,
    projected_region_rollup,
]

ROUNDS = [
    [
        ("update", "emp", (1,), {"salary": 130}),
        ("insert", "emp", (6, "eng", 95), None),
        ("insert", "bonus", (4, 2, 12), None),
    ],
    [
        ("delete", "bonus", (2,), None),
        ("update", "emp", (3,), {"dept": "hr"}),
        ("update", "dept", ("hr",), {"region": "east"}),
    ],
    [
        ("delete", "emp", (4,), None),
        ("insert", "dept", ("ops", "north"), None),
        ("insert", "emp", (7, "ops", 60), None),
        ("update", "emp", (7,), {"salary": 65}),
    ],
]


@pytest.mark.parametrize("build", COMPOSITES, ids=lambda f: f.__name__)
def test_composite_view_maintained(build):
    db = make_db()
    engine = IdIvmEngine(db)
    view = engine.define_view("V", build(db))
    for batch in ROUNDS:
        for kind, table, payload, changes in batch:
            if kind == "update":
                engine.log.update(table, payload, changes)
            elif kind == "insert":
                engine.log.insert(table, payload)
            else:
                engine.log.delete(table, payload)
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected


@pytest.mark.parametrize("build", COMPOSITES, ids=lambda f: f.__name__)
def test_composite_view_tuple_baseline(build):
    from repro.baselines import TupleIvmEngine

    db = make_db()
    engine = TupleIvmEngine(db)
    view = engine.define_view("V", build(db))
    for batch in ROUNDS:
        for kind, table, payload, changes in batch:
            if kind == "update":
                engine.log.update(table, payload, changes)
            elif kind == "insert":
                engine.log.insert(table, payload)
            else:
                engine.log.delete(table, payload)
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected


def test_all_composites_in_one_engine():
    """All five composites share one engine and one log."""
    db = make_db()
    engine = IdIvmEngine(db)
    views = {
        build.__name__: engine.define_view(build.__name__, build(db))
        for build in COMPOSITES
    }
    for batch in ROUNDS:
        for kind, table, payload, changes in batch:
            if kind == "update":
                engine.log.update(table, payload, changes)
            elif kind == "insert":
                engine.log.insert(table, payload)
            else:
                engine.log.delete(table, payload)
        engine.maintain()
        for name, view in views.items():
            expected = evaluate_plan(view.plan, db).as_set()
            assert view.table.as_set() == expected, name
