"""Property-based end-to-end tests: IVM must equal recomputation.

For a pool of view templates covering every QSPJADU operator (and their
compositions), hypothesis generates random initial data and random
multi-round modification sequences; after each maintenance round the
ID-based engine's view (and caches), and the tuple-based baseline's view,
must exactly equal a from-scratch recomputation of the view over the
post-state database.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    AntiJoin,
    SemiJoin,
    Join,
    Project,
    UnionAll,
    equi_join,
    evaluate_plan,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from repro.baselines import TupleIvmEngine
from repro.core import IdIvmEngine
from repro.expr import Call, col, lit
from repro.storage import Database


# ----------------------------------------------------------------------
# schema + data generation
# ----------------------------------------------------------------------
def make_db(r_rows, s_rows, t_rows) -> Database:
    db = Database()
    db.create_table("R", ("rid", "x", "y"), ("rid",))
    db.create_table("S", ("sid", "rid", "z"), ("sid",))
    db.create_table("T", ("tid", "w"), ("tid",))
    db.table("R").load(r_rows)
    db.table("S").load(s_rows)
    db.table("T").load(t_rows)
    return db


small_int = st.integers(min_value=0, max_value=9)

r_rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), small_int, small_int), max_size=12
).map(lambda rows: list({r[0]: r for r in rows}.values()))

s_rows_strategy = st.lists(
    st.tuples(st.integers(100, 140), st.integers(0, 30), small_int), max_size=14
).map(lambda rows: list({r[0]: r for r in rows}.values()))

t_rows_strategy = st.lists(
    st.tuples(st.integers(200, 220), small_int), max_size=8
).map(lambda rows: list({r[0]: r for r in rows}.values()))


# ----------------------------------------------------------------------
# view templates (each takes the Database, returns a plan)
# ----------------------------------------------------------------------
def v_select(db):
    return where(scan(db, "R"), col("x").gt(lit(4)))


def v_project(db):
    return Project(
        scan(db, "R"),
        [("rid", col("rid")), ("total", col("x") + col("y"))],
    )


def v_project_function(db):
    return Project(
        scan(db, "R"),
        [("rid", col("rid")), ("ax", Call("abs", [col("x") - col("y")]))],
    )


def v_join(db):
    return equi_join(
        scan(db, "S"),
        rename(scan(db, "R"), {"rid": "r_rid"}),
        [("rid", "r_rid")],
    )


def v_select_join(db):
    return where(v_join(db), col("x").gt(lit(3)))


def v_theta_join(db):
    return Join(scan(db, "R"), scan(db, "T"), col("x").lt(col("w")))


def v_cross(db):
    return Join(
        project_columns(scan(db, "R"), ("rid",)),
        project_columns(scan(db, "T"), ("tid",)),
        None,
    )


def v_agg_sum(db):
    return group_by(scan(db, "S"), ("rid",), [("sum", col("z"), "total")])


def v_agg_many(db):
    return group_by(
        scan(db, "S"),
        ("rid",),
        [
            ("sum", col("z"), "total"),
            ("count", None, "n"),
            ("avg", col("z"), "mean"),
        ],
    )


def v_agg_minmax(db):
    return group_by(
        scan(db, "S"),
        ("rid",),
        [("min", col("z"), "lo"), ("max", col("z"), "hi")],
    )


def v_agg_over_join(db):
    joined = where(v_join(db), col("x").gt(lit(2)))
    return group_by(joined, ("r_rid",), [("sum", col("z"), "cost")])


def v_agg_computed_arg(db):
    return group_by(scan(db, "S"), ("rid",), [("sum", col("z") * lit(2), "dz")])


def v_select_above_agg(db):
    agg = group_by(scan(db, "S"), ("rid",), [("sum", col("z"), "total")])
    return where(agg, col("total").gt(lit(8)))


def v_join_above_agg(db):
    agg = group_by(scan(db, "S"), ("rid",), [("count", None, "n")])
    return equi_join(agg, rename(scan(db, "R"), {"rid": "r_rid"}), [("rid", "r_rid")])


def v_union(db):
    low = where(scan(db, "R"), col("x").le(lit(4)))
    high = where(scan(db, "R"), col("x").gt(lit(4)))
    return UnionAll(low, high)


def v_semijoin(db):
    s = rename(scan(db, "S"), {"rid": "s_rid"})
    return SemiJoin(scan(db, "R"), s, col("rid").eq(col("s_rid")))


def v_agg_over_semijoin(db):
    s = rename(scan(db, "S"), {"rid": "s_rid"})
    sj = SemiJoin(scan(db, "R"), s, col("rid").eq(col("s_rid")))
    return group_by(sj, ("x",), [("sum", col("y"), "total")])


def v_antijoin(db):
    s = rename(scan(db, "S"), {"rid": "s_rid"})
    return AntiJoin(scan(db, "R"), s, col("rid").eq(col("s_rid")))


def v_antijoin_condition(db):
    s = rename(scan(db, "S"), {"rid": "s_rid"})
    return AntiJoin(
        scan(db, "R"), s, col("rid").eq(col("s_rid")) & col("z").gt(col("x"))
    )


def v_agg_over_antijoin(db):
    s = rename(scan(db, "S"), {"rid": "s_rid"})
    aj = AntiJoin(scan(db, "R"), s, col("rid").eq(col("s_rid")))
    return group_by(aj, ("x",), [("count", None, "n")])


def v_self_join(db):
    r2 = scan(db, "R", alias="r2")
    return Join(scan(db, "R"), r2, col("x").eq(col("r2_y")))


def v_union_of_joins(db):
    a = project_columns(v_join(db), ("sid", "rid", "z"))
    b = project_columns(scan(db, "S"), ("sid", "rid", "z"))
    return UnionAll(a, b)


VIEW_TEMPLATES = [
    v_select,
    v_project,
    v_project_function,
    v_join,
    v_select_join,
    v_theta_join,
    v_cross,
    v_agg_sum,
    v_agg_many,
    v_agg_minmax,
    v_agg_over_join,
    v_agg_computed_arg,
    v_select_above_agg,
    v_join_above_agg,
    v_union,
    v_semijoin,
    v_agg_over_semijoin,
    v_antijoin,
    v_antijoin_condition,
    v_agg_over_antijoin,
    v_self_join,
    v_union_of_joins,
]


# ----------------------------------------------------------------------
# modification sequences
# ----------------------------------------------------------------------
# Abstract ops interpreted against the live database so keys stay valid.
# "upd2" touches two attributes at once — folded multi-attribute updates
# exercise the instance generator's minimal-covering-schema routing.
mod_op = st.tuples(
    st.sampled_from(["ins", "del", "upd", "upd2"]),
    st.sampled_from(["R", "S", "T"]),
    st.integers(0, 10_000),  # seed for key/row choice
    small_int,
    small_int,
)

mod_batch = st.lists(mod_op, max_size=10)

_FRESH_KEY = {"R": 1000, "S": 2000, "T": 3000}
_NON_KEY = {"R": ("x", "y"), "S": ("rid", "z"), "T": ("w",)}


def apply_batch(engine, batch, fresh_base):
    db = engine.db
    for i, (kind, table, seed, v1, v2) in enumerate(batch):
        t = db.table(table)
        if kind == "ins":
            key = (fresh_base + _FRESH_KEY[table] + i,)
            row = {
                "R": key + (v1, v2),
                "S": key + (v1 * 3, v2),  # rid values 0..27
                "T": key + (v1,),
            }[table]
            engine.log.insert(table, row)
        else:
            keys = sorted(t._rows)
            if not keys:
                continue
            key = keys[seed % len(keys)]
            if kind == "del":
                engine.log.delete(table, key)
            elif kind == "upd2":
                attrs = _NON_KEY[table]
                changes = {attrs[0]: v1}
                if len(attrs) > 1:
                    changes[attrs[1]] = v2
                engine.log.update(table, key, changes)
            else:
                attrs = _NON_KEY[table]
                attr = attrs[seed % len(attrs)]
                engine.log.update(table, key, {attr: v1})


# ----------------------------------------------------------------------
# the property
# ----------------------------------------------------------------------
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    template_index=st.integers(0, len(VIEW_TEMPLATES) - 1),
    r_rows=r_rows_strategy,
    s_rows=s_rows_strategy,
    t_rows=t_rows_strategy,
    batches=st.lists(mod_batch, min_size=1, max_size=3),
)
def test_ivm_equals_recompute(template_index, r_rows, s_rows, t_rows, batches):
    template = VIEW_TEMPLATES[template_index]

    db_id = make_db(r_rows, s_rows, t_rows)
    id_engine = IdIvmEngine(db_id)
    id_view = id_engine.define_view("V", template(db_id))

    db_tuple = make_db(r_rows, s_rows, t_rows)
    tuple_engine = TupleIvmEngine(db_tuple)
    tuple_view = tuple_engine.define_view("V", template(db_tuple))

    for round_number, batch in enumerate(batches):
        apply_batch(id_engine, batch, fresh_base=round_number * 100)
        apply_batch(tuple_engine, batch, fresh_base=round_number * 100)
        id_engine.maintain()
        tuple_engine.maintain()

        expected = evaluate_plan(id_view.plan, db_id).as_set()
        assert id_view.table.as_set() == expected, template.__name__
        assert tuple_view.table.as_set() == expected, template.__name__

        # The ID engine's caches must track their subviews exactly.
        for node_id, cache in id_view.caches.items():
            if node_id == id_view.plan.node_id:
                continue
            from repro.core import node_by_id

            node = node_by_id(id_view.plan, node_id)
            assert cache.as_set() == evaluate_plan(node, db_id).as_set(), (
                template.__name__,
                node.label(),
            )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    r_rows=r_rows_strategy,
    s_rows=s_rows_strategy,
    batch=mod_batch,
)
def test_unoptimized_scripts_agree(r_rows, s_rows, batch):
    """Pass 4 must preserve semantics: optimize=False gives the same view."""
    template = v_agg_over_join

    db_a = make_db(r_rows, s_rows, [])
    engine_a = IdIvmEngine(db_a, optimize=True)
    view_a = engine_a.define_view("V", template(db_a))

    db_b = make_db(r_rows, s_rows, [])
    engine_b = IdIvmEngine(db_b, optimize=False)
    view_b = engine_b.define_view("V", template(db_b))

    apply_batch(engine_a, batch, fresh_base=0)
    apply_batch(engine_b, batch, fresh_base=0)
    engine_a.maintain()
    engine_b.maintain()

    assert view_a.table.as_set() == view_b.table.as_set()
    assert view_a.table.as_set() == evaluate_plan(view_a.plan, db_a).as_set()


@pytest.mark.parametrize("template", VIEW_TEMPLATES, ids=lambda t: t.__name__)
def test_templates_smoke(template):
    """Every template defines, maintains and matches on a fixed dataset."""
    r_rows = [(1, 5, 2), (2, 8, 1), (3, 3, 3)]
    s_rows = [(101, 1, 4), (102, 1, 6), (103, 2, 2), (104, 9, 5)]
    t_rows = [(201, 6), (202, 2)]
    db = make_db(r_rows, s_rows, t_rows)
    engine = IdIvmEngine(db)
    view = engine.define_view("V", template(db))
    engine.log.update("R", (1,), {"x": 9})
    engine.log.insert("S", (150, 3, 7))
    engine.log.delete("S", (103,))
    engine.log.update("S", (101,), {"z": 0})
    engine.log.insert("R", (4, 4, 4))
    engine.log.delete("R", (2,))
    engine.maintain()
    assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
