"""Tests for the idIVM engine facade (Figure 3 architecture)."""

import pytest

from repro.algebra import evaluate_plan, group_by, scan
from repro.core import IdIvmEngine
from repro.errors import ScriptError, UnknownTableError
from repro.expr import col
from tests.conftest import build_view_v, build_view_v_prime


class TestDefinition:
    def test_view_is_materialized(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("V", view_v)
        assert view.table.as_set() == {
            ("D1", "P1", 10),
            ("D2", "P1", 10),
            ("D1", "P2", 20),
        }
        assert view.table.schema.key == ("pid", "did") or set(
            view.table.schema.key
        ) == {"pid", "did"}

    def test_duplicate_view_name_rejected(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", view_v)
        with pytest.raises(ScriptError):
            engine.define_view("V", build_view_v(running_example_db))

    def test_definition_does_not_pollute_counters(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", view_v)
        assert running_example_db.counters.total.total == 0

    def test_caches_materialized_for_aggregates(self, running_example_db):
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        # view + one intermediate cache
        assert len(view.caches) == 2
        assert len(view.operator_caches) == 1


class TestMaintenance:
    def test_unknown_view(self, running_example_db):
        engine = IdIvmEngine(running_example_db)
        with pytest.raises(UnknownTableError):
            engine.maintain("nope")

    def test_empty_log_is_cheap_noop(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("V", view_v)
        before = view.table.as_set()
        reports = engine.maintain()
        assert view.table.as_set() == before
        assert reports["V"].total_cost == 0

    def test_multiple_views_maintained_together(self, running_example_db):
        engine = IdIvmEngine(running_example_db)
        v = engine.define_view("V", build_view_v(running_example_db))
        vp = engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        reports = engine.maintain()
        assert set(reports) == {"V", "Vp"}
        assert v.table.as_set() == evaluate_plan(v.plan, running_example_db).as_set()
        assert vp.table.as_set() == evaluate_plan(vp.plan, running_example_db).as_set()

    def test_selective_maintenance_consumes_the_log(self, running_example_db):
        """maintain(name) drains the log — other views go stale by design
        (deferred IVM maintains views on demand; this engine applies the
        whole log to the named view only)."""
        engine = IdIvmEngine(running_example_db)
        v = engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        reports = engine.maintain("V")
        assert set(reports) == {"V"}
        assert ("D1", "P1", 11) in v.table.as_set()

    def test_repeated_rounds(self, running_example_db):
        engine = IdIvmEngine(running_example_db)
        v = engine.define_view("V", build_view_v(running_example_db))
        for price in (11, 12, 13):
            engine.log.update("parts", ("P1",), {"price": price})
            engine.maintain()
            expected = evaluate_plan(v.plan, running_example_db).as_set()
            assert v.table.as_set() == expected

    def test_figure2_costs(self, running_example_db, view_v):
        """The Figure 2 scenario: one i-diff row updating two view rows
        costs exactly 1 lookup + 2 accesses (Table 2 with |Du|=1, p=2)."""
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", view_v)
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        assert report.total_cost == 3
        assert report.cost_of("view_update") == 3
        assert report.cost_of("view_diff") == 0

    def test_report_diff_sizes(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", view_v)
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        assert report.diff_sizes.get("base_u_parts__price") == 1

    def test_group_created_and_deleted(self, running_example_db):
        engine = IdIvmEngine(running_example_db)
        vp = engine.define_view("Vp", build_view_v_prime(running_example_db))
        # D3 becomes a phone: its group appears.
        engine.log.update("devices", ("D3",), {"category": "phone"})
        engine.log.insert("devices_parts", ("D3", "P2"))
        engine.maintain()
        assert ("D3", 20) in vp.table.as_set()
        # And disappears again.
        engine.log.update("devices", ("D3",), {"category": "tablet"})
        engine.maintain()
        assert all(row[0] != "D3" for row in vp.table.as_set())

    def test_describe_script(self, running_example_db, view_v_prime):
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("Vp", view_v_prime)
        assert "APPLY" in view.describe_script()


class TestAvgView:
    def test_avg_maintained_through_operator_caches(self, running_example_db):
        """Table 12: AVG needs the sum/count operator caches."""
        plan = group_by(
            scan(running_example_db, "devices_parts"),
            ("did",),
            [("avg", None, "x")] if False else [("count", None, "n")],
        )
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("C", plan)
        engine.log.insert("devices_parts", ("D3", "P1"))
        engine.log.delete("devices_parts", ("D1", "P2"))
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_avg_values_exact(self, running_example_db):
        from repro.algebra import natural_join, where
        from repro.expr import lit

        joined = natural_join(
            scan(running_example_db, "parts"),
            scan(running_example_db, "devices_parts"),
        )
        plan = group_by(joined, ("did",), [("avg", col("price"), "mean")])
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("A", plan)
        assert view.table.as_set() == {("D1", 15.0), ("D2", 10.0)}
        engine.log.update("parts", ("P2",), {"price": 30})
        engine.maintain()
        assert view.table.as_set() == {("D1", 20.0), ("D2", 10.0)}
        engine.log.delete("devices_parts", ("D1", "P2"))
        engine.maintain()
        assert view.table.as_set() == {("D1", 10.0), ("D2", 10.0)}
