"""System-level invariants beyond result equality.

* the view diffs a ∆-script computes are *effective* (Section 2) with
  respect to the final view state;
* maintenance is idempotent — an immediately repeated round costs zero;
* degenerate databases (empty tables, single rows) behave.
"""

import pytest

from repro.algebra import evaluate_plan
from repro.core import IdIvmEngine, is_effective
from repro.core.diffs import Diff
from repro.core.ir_exec import IrContext
from repro.core.modlog import populate_instances
from repro.core.engine import _reconstruct_pre
from repro.core.script import ComputeDiffStep, execute_script
from repro.storage import Database
from tests.conftest import build_view_v, build_view_v_prime


def make_db() -> Database:
    db = Database()
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    return db


MIXED_BATCH = [
    ("update", "parts", ("P1",), {"price": 11}),
    ("insert", "parts", ("P3", 7), None),
    ("insert", "devices_parts", ("D2", "P3"), None),
    ("update", "devices", ("D3",), {"category": "phone"}),
    ("insert", "devices_parts", ("D3", "P1"), None),
    ("delete", "devices_parts", ("D1", "P2"), None),
]


def log_mixed(engine):
    for kind, table, payload, changes in MIXED_BATCH:
        if kind == "update":
            engine.log.update(table, payload, changes)
        elif kind == "insert":
            engine.log.insert(table, payload)
        else:
            engine.log.delete(table, payload)


class TestEffectiveness:
    def _final_view_diffs(self, build_view):
        """Run a maintenance round manually, capturing the computed view
        diffs and the final view state."""
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_view(db))
        log_mixed(engine)
        entries = engine.log.take()
        db_pre = _reconstruct_pre(db, entries)
        instances = populate_instances(view.generated.base_schemas, entries, db_pre)
        ctx = IrContext(db_pre, db, diffs=instances, caches=view.caches)
        ctx.operator_caches = view.operator_caches
        execute_script(view.generated.script, ctx, db.counters)
        # Final diffs: those applied to the view (the root node).
        root = view.plan.node_id
        view_target = f"n{root}"
        final = [
            d
            for d in ctx.diffs.values()
            if isinstance(d, Diff) and d.schema.target == view_target and len(d)
        ]
        return final, view

    def test_spj_view_diffs_effective(self):
        final, view = self._final_view_diffs(build_view_v)
        assert final, "expected non-empty view diffs"
        for diff in final:
            assert is_effective(diff, view.table), diff.schema

    def test_aggregate_view_diffs_effective(self):
        final, view = self._final_view_diffs(build_view_v_prime)
        for diff in final:
            assert is_effective(diff, view.table), diff.schema


class TestIdempotence:
    @pytest.mark.parametrize("build", [build_view_v, build_view_v_prime])
    def test_second_round_is_free(self, build):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build(db))
        log_mixed(engine)
        engine.maintain()
        state = view.table.as_set()
        report = engine.maintain()["V"]
        assert report.total_cost == 0
        assert view.table.as_set() == state


class TestDegenerateDatabases:
    def test_empty_base_tables(self):
        db = Database()
        db.create_table("devices", ("did", "category"), ("did",))
        db.create_table("parts", ("pid", "price"), ("pid",))
        db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_view_v_prime(db))
        assert len(view.table) == 0
        # Populate from scratch through the log only.
        engine.log.insert("devices", ("D1", "phone"))
        engine.log.insert("parts", ("P1", 10))
        engine.log.insert("devices_parts", ("D1", "P1"))
        engine.maintain()
        assert view.table.as_set() == {("D1", 10)}

    def test_drain_to_empty_and_refill(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_view_v_prime(db))
        for did, pid in [("D1", "P1"), ("D2", "P1"), ("D1", "P2")]:
            engine.log.delete("devices_parts", (did, pid))
        engine.log.delete("parts", ("P1",))
        engine.log.delete("parts", ("P2",))
        engine.maintain()
        assert len(view.table) == 0
        engine.log.insert("parts", ("P9", 99))
        engine.log.insert("devices_parts", ("D2", "P9"))
        engine.maintain()
        assert view.table.as_set() == {("D2", 99)}
        assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()

    def test_single_row_everything(self):
        db = Database()
        db.create_table("devices", ("did", "category"), ("did",))
        db.create_table("parts", ("pid", "price"), ("pid",))
        db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
        db.table("devices").load([("D1", "phone")])
        db.table("parts").load([("P1", 10)])
        db.table("devices_parts").load([("D1", "P1")])
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_view_v_prime(db))
        engine.log.update("parts", ("P1",), {"price": 20})
        engine.maintain()
        assert view.table.as_set() == {("D1", 20)}

    def test_null_values_through_aggregates(self):
        db = Database()
        db.create_table("devices", ("did", "category"), ("did",))
        db.create_table("parts", ("pid", "price"), ("pid",))
        db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
        db.table("devices").load([("D1", "phone")])
        db.table("parts").load([("P1", None), ("P2", 5)])
        db.table("devices_parts").load([("D1", "P1"), ("D1", "P2")])
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_view_v_prime(db))
        assert view.table.as_set() == {("D1", 5)}
        engine.log.update("parts", ("P2",), {"price": None})
        engine.maintain()
        # SQL semantics: sum over all-NULL group is NULL.
        assert view.table.as_set() == {("D1", None)}
        engine.log.update("parts", ("P1",), {"price": 3})
        engine.maintain()
        assert view.table.as_set() == {("D1", 3)}
