"""Tests for the SQL subset front-end."""

import pytest

from repro.algebra import evaluate_plan
from repro.errors import SqlError
from repro.sql import parse, sql_to_plan, tokenize


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("SELECT did FROM devices")
        assert [t.kind for t in tokens] == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "EOF"]

    def test_case_insensitive_keywords(self):
        tokens = tokenize("select x from t")
        assert tokens[0].value == "SELECT"

    def test_strings_and_numbers(self):
        tokens = tokenize("WHERE name = 'phone' AND price >= 10.5")
        values = [t.value for t in tokens if t.kind in ("STRING", "NUMBER")]
        assert values == ["phone", "10.5"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT x -- trailing comment\nFROM t")
        assert len([t for t in tokens if t.kind != "EOF"]) == 4

    def test_neq_variants(self):
        tokens = tokenize("a <> b AND c != d")
        puncts = [t.value for t in tokens if t.kind == "PUNCT"]
        assert puncts == ["<>", "<>"]

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("WHERE name = 'oops")

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT x ; DROP TABLE t")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t WHERE a > 3")
        assert len(stmt.items) == 2
        assert stmt.base.name == "t"
        assert stmt.where is not None

    def test_group_by(self):
        stmt = parse("SELECT g, SUM(x) AS s FROM t GROUP BY g")
        assert [r.name for r in stmt.group_by] == ["g"]

    def test_count_star(self):
        stmt = parse("SELECT g, COUNT(*) AS n FROM t GROUP BY g")
        agg = stmt.items[1].expr
        assert agg.func == "count" and agg.arg is None

    def test_joins(self):
        stmt = parse(
            "SELECT * FROM a NATURAL JOIN b JOIN c ON a.x = c.y, d"
        )
        assert [j.kind for j in stmt.joins] == ["natural", "on", "cross"]

    def test_union_all_and_except(self):
        node = parse("SELECT a FROM t UNION ALL SELECT a FROM s EXCEPT SELECT a FROM u")
        assert node.op == "except"
        assert node.left.op == "union_all"

    def test_between_desugars(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert stmt.where.op == "AND"

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert stmt.where.values == [1, 2, 3]

    def test_not_in(self):
        stmt = parse("SELECT a FROM t WHERE a NOT IN (1, 2)")
        assert type(stmt.where).__name__ == "NotOp"

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE")

    def test_table_alias(self):
        stmt = parse("SELECT u1.a FROM t AS u1")
        assert stmt.base.alias == "u1"


class TestTranslation:
    def test_running_example_flat(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT did, pid, price FROM parts NATURAL JOIN devices_parts "
            "NATURAL JOIN devices WHERE category = 'phone'",
        )
        result = evaluate_plan(plan, running_example_db)
        assert result.as_set() == {
            ("D1", "P1", 10),
            ("D2", "P1", 10),
            ("D1", "P2", 20),
        }

    def test_running_example_aggregate(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
            "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
            "GROUP BY did",
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {
            ("D1", 30),
            ("D2", 10),
        }

    def test_aliased_self_join(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT p1.pid AS a, p2.pid AS b FROM parts p1 "
            "JOIN parts p2 ON p1.price < p2.price",
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {("P1", "P2")}

    def test_select_star(self, running_example_db):
        plan = sql_to_plan(running_example_db, "SELECT * FROM parts")
        assert evaluate_plan(plan, running_example_db).as_set() == {
            ("P1", 10),
            ("P2", 20),
        }

    def test_computed_column_requires_alias(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(running_example_db, "SELECT price * 2 FROM parts")
        plan = sql_to_plan(
            running_example_db, "SELECT pid, price * 2 AS double FROM parts"
        )
        assert ("P1", 20) in evaluate_plan(plan, running_example_db).as_set()

    def test_scalar_function(self, running_example_db):
        plan = sql_to_plan(
            running_example_db, "SELECT pid, abs(price - 15) AS d FROM parts"
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {
            ("P1", 5),
            ("P2", 5),
        }

    def test_union_all(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT did FROM devices WHERE category = 'phone' "
            "UNION ALL SELECT did FROM devices WHERE category = 'tablet'",
        )
        result = evaluate_plan(plan, running_example_db)
        assert result.columns == ("did", "b")
        assert ("D3", 1) in result.as_set()

    def test_except(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT did FROM devices EXCEPT SELECT did FROM devices "
            "WHERE category = 'phone'",
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {("D3",)}

    def test_group_requires_keys(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(running_example_db, "SELECT SUM(price) AS s FROM parts")

    def test_non_grouped_column_rejected(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                running_example_db,
                "SELECT pid, SUM(price) AS s FROM parts GROUP BY price",
            )

    def test_ambiguous_column_rejected(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                running_example_db,
                "SELECT pid FROM parts p1, parts p2",
            )

    def test_shared_columns_need_alias(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                running_example_db,
                "SELECT pid FROM parts JOIN parts ON price = price",
            )

    def test_unknown_column(self, running_example_db):
        with pytest.raises(SqlError):
            sql_to_plan(running_example_db, "SELECT nope FROM parts")

    def test_having_filters_groups(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
            "devices_parts NATURAL JOIN devices GROUP BY did "
            "HAVING cost > 15",
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {("D1", 30)}

    def test_having_maintained_incrementally(self, running_example_db):
        from repro.core import IdIvmEngine

        engine = IdIvmEngine(running_example_db)
        view = engine.define_view(
            "V",
            sql_to_plan(
                running_example_db,
                "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
                "devices_parts NATURAL JOIN devices GROUP BY did "
                "HAVING cost > 15",
            ),
        )
        assert view.table.as_set() == {("D1", 30)}
        # D2's group crosses the HAVING threshold.
        engine.log.update("parts", ("P1",), {"price": 16})
        engine.maintain()
        assert view.table.as_set() == {("D1", 36), ("D2", 16)}

    def test_having_on_group_key_combination(self, running_example_db):
        plan = sql_to_plan(
            running_example_db,
            "SELECT category, COUNT(*) AS n FROM devices "
            "GROUP BY category HAVING n >= 2 AND category <> 'tablet'",
        )
        assert evaluate_plan(plan, running_example_db).as_set() == {("phone", 2)}

    def test_end_to_end_ivm_from_sql(self, running_example_db):
        from repro.core import IdIvmEngine

        engine = IdIvmEngine(running_example_db)
        view = engine.define_view(
            "V",
            sql_to_plan(
                running_example_db,
                "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
                "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
                "GROUP BY did",
            ),
        )
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        assert view.table.as_set() == {("D1", 31), ("D2", 11)}
