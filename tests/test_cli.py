"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Initial view" in out
        assert "APPLY" in out
        assert "maintenance cost" in out


class TestExplain:
    def test_explain_shows_plan_and_script(self, capsys):
        code = main(
            ["explain", "--sql", "SELECT pid, price FROM parts WHERE price > 15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SCAN parts" in out
        assert "ids:" in out
        assert "∆-script" in out

    def test_no_minimize_flag_keeps_probes(self, capsys):
        sql = "SELECT pid, price FROM parts WHERE price > 15"
        main(["explain", "--sql", sql])
        minimized = capsys.readouterr().out
        main(["explain", "--sql", sql, "--no-minimize"])
        naive = capsys.readouterr().out
        assert naive.count("Subview") > minimized.count("Subview")

    def test_bad_sql_raises(self):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            main(["explain", "--sql", "SELECT FROM WHERE"])


class TestSweep:
    def test_sweep_prints_table(self, capsys):
        code = main(
            ["sweep", "--param", "f", "--values", "4", "--parts", "80"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "idIVM" in out

    def test_join_sweep_disables_selection(self, capsys):
        code = main(
            ["sweep", "--param", "j", "--values", "2,3", "--parts", "60"]
        )
        assert code == 0
        lines = [
            l for l in capsys.readouterr().out.splitlines() if l[:1].isdigit()
        ]
        assert len(lines) == 2

    def test_unknown_param_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--param", "zzz", "--values", "1"])


class TestBsma:
    def test_bsma_small(self, capsys):
        code = main(["bsma", "--users", "120", "--updates", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q10" in out
        assert "speedup" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
