"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Initial view" in out
        assert "APPLY" in out
        assert "maintenance cost" in out


class TestExplain:
    def test_explain_shows_plan_and_script(self, capsys):
        code = main(
            ["explain", "--sql", "SELECT pid, price FROM parts WHERE price > 15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SCAN parts" in out
        assert "ids:" in out
        assert "∆-script" in out

    def test_no_minimize_flag_keeps_probes(self, capsys):
        sql = "SELECT pid, price FROM parts WHERE price > 15"
        main(["explain", "--sql", sql])
        minimized = capsys.readouterr().out
        main(["explain", "--sql", sql, "--no-minimize"])
        naive = capsys.readouterr().out
        assert naive.count("Subview") > minimized.count("Subview")

    def test_bad_sql_raises(self):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            main(["explain", "--sql", "SELECT FROM WHERE"])


class TestSweep:
    def test_sweep_prints_table(self, capsys):
        code = main(
            ["sweep", "--param", "f", "--values", "4", "--parts", "80"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "idIVM" in out

    def test_join_sweep_disables_selection(self, capsys):
        code = main(
            ["sweep", "--param", "j", "--values", "2,3", "--parts", "60"]
        )
        assert code == 0
        lines = [
            l for l in capsys.readouterr().out.splitlines() if l[:1].isdigit()
        ]
        assert len(lines) == 2

    def test_unknown_param_rejected(self, capsys):
        assert main(["sweep", "--param", "zzz", "--values", "1"]) != 0
        assert "usage" in capsys.readouterr().err


class TestBsma:
    def test_bsma_small(self, capsys):
        code = main(["bsma", "--users", "120", "--updates", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Q10" in out
        assert "speedup" in out


class TestUsage:
    """No/unknown command prints usage and exits non-zero, consistently."""

    def test_missing_command_rejected(self, capsys):
        code = main([])
        assert code == 2
        err = capsys.readouterr().err
        assert "usage" in err
        assert "command is required" in err

    def test_unknown_command_rejected(self, capsys):
        code = main(["frobnicate"])
        assert code == 2
        assert "usage" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out


class TestAnalyze:
    def test_explain_analyze_prints_actuals(self, capsys):
        code = main(
            [
                "explain",
                "--analyze",
                "--sql",
                "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
                "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
                "GROUP BY did",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "actual rows=" in out
        assert "lookups=" in out and "reads=" in out and "writes=" in out


class TestTrace:
    def test_demo_trace_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace, phase_totals, validate_trace

        path = tmp_path / "trace.jsonl"
        assert main(["demo", "--trace", str(path)]) == 0
        assert validate_trace(str(path)) == []
        records = load_trace(str(path))
        kinds = {r["kind"] for r in records}
        assert {"engine", "view", "phase", "stmt"} <= kinds
        # Per-phase sums over phase spans must match what the engine
        # reported into the view span's attrs (exact reconciliation).
        totals = phase_totals(records)
        view_spans = [r for r in records if r["kind"] == "view"]
        assert view_spans
        reported = view_spans[0]["attrs"]["phase_counts"]
        for phase, counts in reported.items():
            assert totals.get(phase, None) is not None or counts["total"] == 0
            if phase in totals:
                assert totals[phase].as_dict() == counts

    def test_sweep_trace_reconciles_per_round(self, tmp_path, capsys):
        from repro.obs import load_trace, phase_totals, validate_trace

        path = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep", "--param", "d", "--values", "100,200",
                "--parts", "200", "--trace", str(path),
            ]
        )
        assert code == 0
        assert validate_trace(str(path)) == []
        records = load_trace(str(path))
        by_id = {r["span_id"]: r for r in records}

        def subtree(root_id):
            out = []
            stack = [root_id]
            while stack:
                sid = stack.pop()
                out.append(by_id[sid])
                stack.extend(
                    r["span_id"] for r in records if r["parent_id"] == sid
                )
            return out

        maintains = [r for r in records if r["name"] == "maintain"]
        assert len(maintains) == 4  # 2 systems x 2 sweep values
        for round_span in maintains:
            spans = subtree(round_span["span_id"])
            totals = phase_totals(spans)
            view_spans = [r for r in spans if r["kind"] == "view"]
            assert len(view_spans) == 1
            reported = view_spans[0]["attrs"]["phase_counts"]
            for phase, counts in reported.items():
                got = totals.get(phase)
                assert (
                    got.as_dict() == counts
                    if got is not None
                    else counts["total"] == 0
                ), (phase, counts)
