"""Unit tests for the diff-driven (index-backed) plan evaluator."""

import pytest

from repro.algebra import (
    Bindings,
    GroupBy,
    UnionAll,
    evaluate_plan,
    fetch,
    group_by,
    natural_join,
    project_columns,
    rename,
    scan,
    where,
)
from repro.algebra.plan import AntiJoin, Project
from repro.errors import PlanError
from repro.expr import col, lit
from repro.storage import Table, TableSchema


class TestBindings:
    def test_dedupes_preserving_order(self):
        b = Bindings(("x",), [(1,), (2,), (1,)])
        assert b.values == [(1,), (2,)]

    def test_project(self):
        b = Bindings(("x", "y"), [(1, "a"), (2, "b"), (1, "c")])
        assert b.project(("x",)).values == [(1,), (2,)]

    def test_empty(self):
        assert Bindings(("x",), []).is_empty()


class TestFetchScan:
    def test_pk_binding_uses_pk_index(self, running_example_db):
        node = scan(running_example_db, "parts")
        running_example_db.counters.reset()
        rel = fetch(node, running_example_db, Bindings(("pid",), [("P1",)]))
        assert rel.as_set() == {("P1", 10)}
        counts = running_example_db.counters.total
        assert counts.index_lookups == 1
        assert counts.tuple_reads == 1

    def test_secondary_binding(self, running_example_db):
        node = scan(running_example_db, "devices_parts")
        rel = fetch(node, running_example_db, Bindings(("pid",), [("P1",)]))
        assert rel.as_set() == {("D1", "P1"), ("D2", "P1")}

    def test_no_bindings_scans(self, running_example_db):
        node = scan(running_example_db, "parts")
        running_example_db.counters.reset()
        rel = fetch(node, running_example_db)
        assert len(rel) == 2
        assert running_example_db.counters.total.tuple_reads == 2

    def test_empty_bindings_free(self, running_example_db):
        node = scan(running_example_db, "parts")
        running_example_db.counters.reset()
        rel = fetch(node, running_example_db, Bindings(("pid",), []))
        assert len(rel) == 0
        assert running_example_db.counters.total.total == 0


class TestFetchOperators:
    def test_select_filters(self, running_example_db):
        node = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        rel = fetch(node, running_example_db, Bindings(("did",), [("D1",), ("D3",)]))
        assert rel.as_set() == {("D1", "phone")}

    def test_project_passthrough_pushdown(self, running_example_db):
        node = rename(scan(running_example_db, "parts"), {"price": "cost"})
        running_example_db.counters.reset()
        rel = fetch(node, running_example_db, Bindings(("pid",), [("P2",)]))
        assert rel.as_set() == {("P2", 20)}
        assert running_example_db.counters.total.index_lookups == 1

    def test_project_computed_falls_back(self, running_example_db):
        node = Project(
            scan(running_example_db, "parts"),
            [("pid2", col("pid") + lit("")), ("price", col("price"))],
        )
        rel = fetch(node, running_example_db, Bindings(("pid2",), [("P1",)]))
        assert rel.as_set() == {("P1", 10)}

    def test_join_binding_on_left(self, running_example_db, view_v):
        rel = fetch(view_v, running_example_db, Bindings(("pid",), [("P1",)]))
        assert rel.as_set() == {("D1", "P1", 10), ("D2", "P1", 10)}

    def test_join_binding_on_right_side(self, running_example_db, view_v):
        rel = fetch(view_v, running_example_db, Bindings(("did",), [("D1",)]))
        assert rel.as_set() == {("D1", "P1", 10), ("D1", "P2", 20)}

    def test_join_binding_spanning_both_sides(self, running_example_db, view_v):
        rel = fetch(
            view_v, running_example_db, Bindings(("did", "pid"), [("D1", "P2")])
        )
        assert rel.as_set() == {("D1", "P2", 20)}

    def test_join_probe_is_index_driven(self, running_example_db, view_v):
        # Fetching P1's view rows should not scan the devices table.
        running_example_db.counters.reset()
        fetch(view_v, running_example_db, Bindings(("pid",), [("P1",)]))
        counts = running_example_db.counters.total
        # parts(1 lookup + 1 read), dp by pid (1 lookup + 2 reads),
        # devices by did (2 lookups + 2 reads) = 4 lookups, 5 reads.
        assert counts.index_lookups == 4
        assert counts.tuple_reads == 5

    def test_unknown_binding_column_raises(self, running_example_db, view_v):
        with pytest.raises(PlanError):
            fetch(view_v, running_example_db, Bindings(("nope",), [(1,)]))

    def test_antijoin_with_bindings(self, running_example_db):
        devices = scan(running_example_db, "devices")
        dp = rename(
            scan(running_example_db, "devices_parts"), {"did": "dp_did", "pid": "dp_pid"}
        )
        node = AntiJoin(devices, dp, col("did").eq(col("dp_did")))
        rel = fetch(node, running_example_db, Bindings(("did",), [("D1",), ("D3",)]))
        assert rel.as_set() == {("D3", "tablet")}

    def test_union_routes_branch_bindings(self, running_example_db):
        phones = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        tablets = where(scan(running_example_db, "devices"), col("category").eq(lit("tablet")))
        node = UnionAll(phones, tablets)
        rel = fetch(node, running_example_db, Bindings(("did", "b"), [("D1", 0), ("D3", 1)]))
        assert rel.as_set() == {("D1", "phone", 0), ("D3", "tablet", 1)}

    def test_union_without_branch_binding(self, running_example_db):
        phones = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        tablets = where(scan(running_example_db, "devices"), col("category").eq(lit("tablet")))
        node = UnionAll(phones, tablets)
        rel = fetch(node, running_example_db, Bindings(("did",), [("D3",)]))
        assert rel.as_set() == {("D3", "tablet", 1)}

    def test_groupby_binding_on_keys(self, running_example_db, view_v_prime):
        rel = fetch(view_v_prime, running_example_db, Bindings(("did",), [("D1",)]))
        assert rel.as_set() == {("D1", 30)}

    def test_groupby_binding_on_agg_falls_back(self, running_example_db, view_v_prime):
        rel = fetch(view_v_prime, running_example_db, Bindings(("cost",), [(10,)]))
        assert rel.as_set() == {("D2", 10)}

    def test_matches_full_evaluation(self, running_example_db, view_v):
        full = evaluate_plan(view_v, running_example_db).as_set()
        fetched = fetch(view_v, running_example_db).as_set()
        assert full == fetched


class TestFetchWithCaches:
    def test_cache_shortcuts_recomputation(self, running_example_db, view_v):
        from repro.core.idinfer import annotate_plan

        annotated = annotate_plan(view_v)
        cache = Table(
            TableSchema("cache_v", ("did", "pid", "price"), ("did", "pid")),
            counters=running_example_db.counters,
        )
        cache.load([("D1", "P1", 10), ("D2", "P1", 10), ("D1", "P2", 20)])
        caches = {annotated.node_id: cache}
        running_example_db.counters.reset()
        rel = fetch(
            annotated,
            running_example_db,
            Bindings(("pid",), [("P1",)]),
            caches=caches,
        )
        assert rel.as_set() == {("D1", "P1", 10), ("D2", "P1", 10)}
        counts = running_example_db.counters.total
        # One secondary-index lookup on the cache, two reads; no base access.
        assert counts.index_lookups == 1
        assert counts.tuple_reads == 2
