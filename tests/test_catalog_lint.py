"""Catalog-scale analysis: the deterministic catalog, the SHARE7xx
sharing pass, the incremental analysis cache, and `repro lint --catalog`.

The load-bearing claims:

* the catalog is a pure function of its config — twin builds agree on
  every label and every exact fingerprint;
* the sharing pass flags exactly the seeded overlap (and stays quiet on
  disjoint views), and its SHARE701 price reconciles with a *measured*
  twin-engine maintenance round under the COST503 tolerance policy;
* the cache replays byte-identical reports warm, survives corruption
  and version bumps by going cold (never by lying), and the strict
  engine gate honors a poisoned entry only when explicitly opted in.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import (
    AnalysisCache,
    analyze_catalog,
    entry_from_report,
    generated_cache_key,
    plan_fingerprint,
    view_facts,
)
from repro.analysis.cache import CACHE_ENV_VAR
from repro.analysis.cost import SCRIPT_PHASES, reconcile_counts
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.sharing import _cache_step_labels, facts_from_json, facts_to_json
from repro.catalog import (
    CatalogConfig,
    build_catalog_database,
    catalog_views,
)
from repro.cli import main
from repro.core import IdIvmEngine
from repro.core.script import PHASE_CACHE_DIFF, PHASE_CACHE_UPDATE
from repro.costmodel import diff_sizes_env
from repro.errors import StaticAnalysisError

SMALL = CatalogConfig(
    n_views=24, n_overlap_groups=3, group_size=3, n_duplicates=2, n_subsumed=2
)


def _generate(db, label, plan):
    from repro.core.generator import ScriptGenerator
    from repro.core.schema_gen import generate_base_schemas

    generator = ScriptGenerator(label, plan, cost_db=db)
    return generator.generate(generate_base_schemas(generator.plan, db))


# ----------------------------------------------------------------------
# the catalog generator
# ----------------------------------------------------------------------
class TestCatalog:
    def test_twin_builds_are_identical(self):
        config = CatalogConfig(n_views=60)
        snapshots = []
        for _ in range(2):
            db = build_catalog_database(config)
            snapshots.append(
                [
                    (label, plan_fingerprint(plan, db, alpha=False))
                    for label, plan in catalog_views(db, config)
                ]
            )
        assert snapshots[0] == snapshots[1]

    def test_labels_are_unique_and_count_respected(self):
        db = build_catalog_database(SMALL)
        views = catalog_views(db, SMALL)
        labels = [label for label, _ in views]
        assert len(views) == SMALL.n_views
        assert len(set(labels)) == len(labels)

    def test_fillers_are_pairwise_distinct(self):
        config = CatalogConfig(
            n_views=40, n_overlap_groups=1, group_size=1,
            n_duplicates=0, n_subsumed=0,
        )
        db = build_catalog_database(config)
        fillers = [
            plan_fingerprint(plan, db)
            for label, plan in catalog_views(db, config)
            if label.startswith("fl")
        ]
        assert len(set(fillers)) == len(fillers)


# ----------------------------------------------------------------------
# the sharing pass
# ----------------------------------------------------------------------
def _small_facts():
    db = build_catalog_database(SMALL)
    facts = []
    for label, plan in catalog_views(db, SMALL):
        facts.append(view_facts(label, _generate(db, label, plan), db))
    return facts


@pytest.fixture(scope="module")
def small_facts():
    return _small_facts()


class TestSharingPass:
    def test_share701_prices_the_seeded_overlap(self, small_facts):
        report = analyze_catalog(small_facts)
        share701 = [d for d in report.diagnostics if d.rule_id == "SHARE701"]
        # one finding per overlap group, each naming every group member
        assert len(share701) == SMALL.n_overlap_groups
        priced = [d for d in share701 if "accesses/round" in d.message]
        assert priced, "no SHARE701 finding carries a cost-model price"
        assert any("g000_m0" in d.message for d in share701)

    def test_share702_flags_duplicates(self, small_facts):
        report = analyze_catalog(small_facts)
        share702 = [d for d in report.diagnostics if d.rule_id == "SHARE702"]
        assert len(share702) == SMALL.n_duplicates
        assert any("dup000" in d.message for d in share702)

    def test_share703_flags_subsumed_views(self, small_facts):
        report = analyze_catalog(small_facts)
        share703 = [d for d in report.diagnostics if d.rule_id == "SHARE703"]
        flagged = {d.location for d in share703}
        assert {"sub000", "sub001"} <= flagged

    def test_everything_is_informational(self, small_facts):
        report = analyze_catalog(small_facts)
        assert not report.errors and not report.warnings

    def test_quiet_on_disjoint_views(self):
        config = CatalogConfig(
            n_views=8, n_overlap_groups=1, group_size=1,
            n_duplicates=0, n_subsumed=0,
        )
        db = build_catalog_database(config)
        facts = [
            view_facts(label, _generate(db, label, plan), db)
            for label, plan in catalog_views(db, config)
            if label.startswith("fl")
        ]
        report = analyze_catalog(facts)
        assert report.diagnostics == []

    def test_facts_survive_json_roundtrip(self, small_facts):
        replayed = [facts_from_json(facts_to_json(f)) for f in small_facts]
        assert replayed == list(small_facts)
        direct = analyze_catalog(small_facts).render()
        assert analyze_catalog(replayed).render() == direct


# ----------------------------------------------------------------------
# SHARE701 price vs a measured twin-engine round
# ----------------------------------------------------------------------
class TestShare701Reconciliation:
    def test_predicted_duplicate_cost_reconciles_with_measurement(self):
        """The SHARE701 price claims each extra copy of the shared
        sub-plan repeats its maintenance pipeline.  Run the twin engines
        for real: both views cache the same sub-plan, both measured
        cache-phase counts must agree (the duplicated work exists), and
        the priced vector — evaluated at the observed diff sizes — must
        upper-bound the measurement within the COST503 tolerances."""
        from repro.catalog import _group_member

        engines = {}
        reports = {}
        for label, member in (("twin_a", 0), ("twin_b", 1)):
            db = build_catalog_database(SMALL)
            engine = IdIvmEngine(db)
            engine.define_view(label, _group_member(db, 0, member))
            engines[label] = engine

        # The twins cache one identical sub-plan: SHARE701 material.
        facts = {
            label: view_facts(
                label, engine.views[label].generated, engine.db
            )
            for label, engine in engines.items()
        }
        shared = [
            cache
            for cache in facts["twin_a"].caches
            if cache.kind == "intermediate"
            and cache.fingerprint
            in {c.fingerprint for c in facts["twin_b"].caches}
        ]
        assert shared, "twin views do not share an intermediate cache"
        catalog_report = analyze_catalog(facts.values())
        assert any(
            d.rule_id == "SHARE701" and "accesses/round" in d.message
            for d in catalog_report.diagnostics
        )

        # One identical round against both engines: inserts landing
        # inside group 0's window [100, 250).
        for label, engine in engines.items():
            for i in range(6):
                engine.log.insert("microblog", (900 + i, i % 4, 120 + 9 * i, i % 5))
            for i in range(4):
                engine.log.insert("mentions", (700 + i, i * 3, i % 6))
            reports[label] = engine.maintain()[label]

        def cache_phase_counts(report):
            merged = {"index_lookups": 0.0, "tuple_reads": 0.0, "tuple_writes": 0.0}
            for phase in (PHASE_CACHE_DIFF, PHASE_CACHE_UPDATE):
                counts = report.phase_counts.get(phase)
                if counts is None:
                    continue
                for metric, value in counts.as_dict().items():
                    if metric in merged:
                        merged[metric] += value
            return merged

        measured_a = cache_phase_counts(reports["twin_a"])
        measured_b = cache_phase_counts(reports["twin_b"])
        assert sum(measured_a.values()) > 0, "round did not touch the cache"
        # the duplicated work is real: the twin pays the same bill
        assert measured_a == measured_b

        # Price the shared cache with the define-time cost model and
        # bind the observed diff cardinalities.
        view = engines["twin_a"].views["twin_a"]
        assert view.cost_model is not None
        labels = _cache_step_labels(view.generated, shared[0].node_id)
        from repro.costmodel.symbolic import CostVector

        vector = CostVector()
        for step in view.cost_model.steps:
            if step.label in labels and step.phase in (
                PHASE_CACHE_DIFF,
                PHASE_CACHE_UPDATE,
            ):
                vector = vector + step.vector
        predicted = view.cost_model.evaluate_vector(
            vector, diff_sizes_env(reports["twin_a"].diff_sizes)
        )
        assert sum(predicted.values()) > 0
        deviations = reconcile_counts(
            {SCRIPT_PHASES[0]: predicted}, {SCRIPT_PHASES[0]: measured_a}
        )
        assert deviations == [], "\n".join(d.render() for d in deviations)


# ----------------------------------------------------------------------
# the analysis cache
# ----------------------------------------------------------------------
class TestAnalysisCache:
    def _report(self):
        report = AnalysisReport()
        report.add("SH402", "n3", "routable", hint="fine")
        return report

    def test_roundtrip_through_disk(self, tmp_path):
        cache = AnalysisCache(tmp_path)
        cache.put("k1", entry_from_report(self._report()))
        cache.flush()
        fresh = AnalysisCache(tmp_path)
        entry = fresh.get("k1")
        assert entry is not None
        assert entry["diagnostics"][0][0] == "SH402"
        assert fresh.hits == 1 and fresh.misses == 0

    def test_corrupt_file_goes_cold(self, tmp_path):
        cache = AnalysisCache(tmp_path)
        cache.put("k1", entry_from_report(self._report()))
        cache.flush()
        cache.path.write_text('{"schema": "repro.analysis-cache", "vers')
        fresh = AnalysisCache(tmp_path)
        assert fresh.get("k1") is None
        # and the next flush repairs the file
        fresh.put("k2", {"diagnostics": []})
        fresh.flush()
        assert AnalysisCache(tmp_path).get("k2") is not None

    def test_garbage_bytes_go_cold(self, tmp_path):
        path = tmp_path / "analysis.json"
        path.write_bytes(b"\x00\xff garbage")
        assert AnalysisCache(tmp_path).get("anything") is None

    def test_header_version_bump_invalidates(self, tmp_path):
        cache = AnalysisCache(tmp_path)
        cache.put("k1", entry_from_report(self._report()))
        cache.flush()
        payload = json.loads(cache.path.read_text())
        payload["pass_versions"] = dict(
            payload["pass_versions"], typecheck=999
        )
        cache.path.write_text(json.dumps(payload))
        assert AnalysisCache(tmp_path).get("k1") is None

    def test_gate_consults_cache_only_when_opted_in(self, tmp_path, monkeypatch):
        """Poison the cache entry for a clean view: the strict gate must
        replay it (and raise) only under REPRO_ANALYSIS_CACHE."""
        from repro.algebra import scan, where
        from repro.analysis import check_generated
        from repro.expr import Cmp, col, lit
        from repro.storage import Database

        db = Database()
        db.create_table("t", ("k", "a"), ("k",), types={"k": "int", "a": "int"})
        db.table("t").load([(1, 5)])
        generated = _generate(db, "V", where(scan(db, "t"), Cmp(">", col("a"), lit(0))))

        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        check_generated(generated, db=db)  # clean without a cache

        poisoned = AnalysisReport()
        poisoned.add("TC102", "n0", "poisoned entry")
        cache = AnalysisCache(tmp_path)
        cache.put(generated_cache_key(generated, db), entry_from_report(poisoned))
        cache.flush()

        check_generated(generated, db=db)  # still clean: not opted in
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        with pytest.raises(StaticAnalysisError, match="poisoned"):
            check_generated(generated, db=db)

    def test_gate_populates_cache_when_opted_in(self, tmp_path, monkeypatch):
        from repro.algebra import scan, where
        from repro.analysis import check_generated
        from repro.expr import Cmp, col, lit
        from repro.storage import Database

        db = Database()
        db.create_table("t", ("k", "a"), ("k",), types={"k": "int", "a": "int"})
        db.table("t").load([(1, 5)])
        generated = _generate(db, "V", where(scan(db, "t"), Cmp(">", col("a"), lit(0))))
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        check_generated(generated, db=db)
        stored = AnalysisCache(tmp_path)
        assert stored.get(generated_cache_key(generated, db)) is not None


# ----------------------------------------------------------------------
# repro lint --catalog (the CLI surface)
# ----------------------------------------------------------------------
def _catalog_json(capsys, cache_dir, *extra) -> str:
    args = [
        "lint", "--catalog", "--catalog-views", "30",
        "--cache-dir", str(cache_dir), "--json", *extra,
    ]
    assert main(args) == 0
    return capsys.readouterr().out


class TestLintCatalogCli:
    def test_cold_and_warm_json_are_byte_identical(self, capsys, tmp_path):
        cold = _catalog_json(capsys, tmp_path / "c")
        warm = _catalog_json(capsys, tmp_path / "c")
        nocache = _catalog_json(capsys, tmp_path / "other", "--no-cache")
        assert cold == warm
        assert cold == nocache
        payload = json.loads(cold)["catalog"]
        assert payload["views"] == 30
        assert payload["errors"] == 0
        rules = {d["rule"] for d in payload["sharing"]}
        assert "SHARE701" in rules

    def test_human_mode_reports_cache_traffic(self, capsys, tmp_path):
        assert main(
            ["lint", "--catalog", "--catalog-views", "12",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        cold_out = capsys.readouterr().out
        assert "12 views, 0 error(s)" in cold_out
        assert "12 miss(es)" in cold_out
        assert main(
            ["lint", "--catalog", "--catalog-views", "12",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        warm_out = capsys.readouterr().out
        assert "12 hit(s)" in warm_out

    def test_plain_lint_cold_warm_and_no_cache_agree(self, capsys, tmp_path):
        outputs = []
        for extra in (
            ("--cache-dir", str(tmp_path / "c")),
            ("--cache-dir", str(tmp_path / "c")),
            ("--no-cache",),
        ):
            assert main(["lint", "--json", *extra]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]
        payload = json.loads(outputs[0])
        assert payload["errors"] == 0
        assert {e["view"] for e in payload["views"]} >= {"devices/aggregate"}

    def test_cache_dir_written_and_corruption_recovers(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        first = _catalog_json(capsys, cache_dir)
        cache_file = cache_dir / "analysis.json"
        assert cache_file.exists()
        cache_file.write_text("{ not json")
        again = _catalog_json(capsys, cache_dir)
        assert first == again
        assert json.loads(cache_file.read_text())["entries"]
