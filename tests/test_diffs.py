"""Tests for the i-diff formalism and APPLY semantics (paper Section 2)."""

import pytest

from repro.core.apply import apply_diff
from repro.core.diffs import (
    DELETE,
    INSERT,
    UPDATE,
    Diff,
    DiffSchema,
    delete_schema_for,
    insert_schema_for,
    is_effective,
    merge_diffs,
    update_schema_for,
)
from repro.errors import DiffError, IntegrityError
from repro.storage import Table, TableSchema


@pytest.fixture
def view_table() -> Table:
    """The initial view instance V(DB) of Figure 2."""
    table = Table(TableSchema("V", ("did", "pid", "price"), ("did", "pid")))
    table.load([("D1", "P1", 10), ("D2", "P1", 10), ("D1", "P2", 20)])
    return table


class TestDiffSchema:
    def test_columns_layout(self):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        assert schema.columns == ("pid", "price__pre", "price__post")

    def test_insert_rejects_pre(self):
        with pytest.raises(DiffError):
            DiffSchema(INSERT, "V", ("pid",), pre_attrs=("price",), post_attrs=("price",))

    def test_delete_rejects_post(self):
        with pytest.raises(DiffError):
            DiffSchema(DELETE, "V", ("pid",), post_attrs=("price",))

    def test_update_requires_post(self):
        with pytest.raises(DiffError):
            DiffSchema(UPDATE, "V", ("pid",), pre_attrs=("price",))

    def test_requires_ids(self):
        with pytest.raises(DiffError):
            DiffSchema(UPDATE, "V", (), post_attrs=("price",))

    def test_id_attr_cannot_also_be_value_attr(self):
        with pytest.raises(DiffError):
            DiffSchema(UPDATE, "V", ("pid",), post_attrs=("pid",))

    def test_canonical_base_schemas(self):
        ts = TableSchema("parts", ("pid", "price"), ("pid",))
        ins = insert_schema_for(ts)
        assert (ins.kind, ins.id_attrs, ins.post_attrs) == (INSERT, ("pid",), ("price",))
        dele = delete_schema_for(ts)
        assert (dele.kind, dele.pre_attrs) == (DELETE, ("price",))
        upd = update_schema_for(ts, ("price",))
        assert upd.pre_attrs == ("price",) and upd.post_attrs == ("price",)


class TestDiffInstance:
    def test_dedupes_identical_rows(self):
        schema = DiffSchema(DELETE, "V", ("pid",))
        diff = Diff(schema, [("P1",), ("P1",)])
        assert len(diff) == 1

    def test_conflicting_ids_rejected(self):
        schema = DiffSchema(UPDATE, "V", ("pid",), (), ("price",))
        with pytest.raises(DiffError):
            Diff(schema, [("P1", 11), ("P1", 12)])

    def test_arity_checked(self):
        schema = DiffSchema(DELETE, "V", ("pid",))
        with pytest.raises(DiffError):
            Diff(schema, [("P1", 99)])

    def test_accessors(self):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        row = diff.rows[0]
        assert diff.id_of(row) == ("P1",)
        assert diff.pre_value(row, "price") == 10
        assert diff.post_value(row, "price") == 11

    def test_merge(self):
        schema = DiffSchema(DELETE, "V", ("pid",))
        merged = merge_diffs([Diff(schema, [("P1",)]), Diff(schema, [("P2",)])])
        assert len(merged) == 2

    def test_merge_rejects_mixed_schemas(self):
        a = Diff(DiffSchema(DELETE, "V", ("pid",)))
        b = Diff(DiffSchema(DELETE, "V", ("did",)))
        with pytest.raises(DiffError):
            merge_diffs([a, b])


class TestApplyUpdate:
    def test_example_2_2(self, view_table):
        """Updating P1's price hits both P1 view tuples via one diff row."""
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        applied = apply_diff(view_table, diff)
        assert view_table.as_set() == {
            ("D1", "P1", 11),
            ("D2", "P1", 11),
            ("D1", "P2", 20),
        }
        assert len(applied) == 2

    def test_dummy_update_is_noop(self, view_table):
        """Overestimated i-diffs touch nothing (the P3 discussion, §1)."""
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P3", 20, 21)])
        applied = apply_diff(view_table, diff)
        assert len(applied) == 0
        assert len(view_table) == 3

    def test_update_costs(self, view_table):
        """Appendix A: |∆| index lookups + p tuple accesses."""
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        view_table.counters.reset()
        apply_diff(view_table, diff)
        counts = view_table.counters.total
        assert counts.index_lookups == 1
        assert counts.tuple_writes == 2
        assert counts.tuple_reads == 0

    def test_expansion_returning(self, view_table):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        applied = apply_diff(view_table, diff)
        expansion = applied.expansion()
        assert expansion.columns == ("did", "pid", "price__pre", "price__post")
        assert expansion.as_set() == {
            ("D1", "P1", 10, 11),
            ("D2", "P1", 10, 11),
        }

    def test_as_full_diff(self, view_table):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        applied = apply_diff(view_table, Diff(schema, [("P1", 10, 11)]))
        full = applied.as_full_diff()
        assert full.schema.id_attrs == ("did", "pid")
        assert set(full.rows) == {("D1", "P1", 10, 11), ("D2", "P1", 10, 11)}


class TestApplyInsert:
    def test_example_2_3(self, view_table):
        schema = DiffSchema(
            INSERT, "V", ("did", "pid"), post_attrs=("price",)
        )
        diff = Diff(schema, [("D3", "P2", 20), ("D4", "P3", 30)])
        applied = apply_diff(view_table, diff)
        assert len(applied) == 2
        assert ("D3", "P2", 20) in view_table.as_set()
        assert ("D4", "P3", 30) in view_table.as_set()

    def test_duplicate_identical_insert_skipped(self, view_table):
        """The NOT IN guard lets several i-diffs insert the same tuple."""
        schema = DiffSchema(INSERT, "V", ("did", "pid"), post_attrs=("price",))
        diff = Diff(schema, [("D1", "P1", 10)])
        applied = apply_diff(view_table, diff)
        assert len(applied) == 0
        assert len(view_table) == 3

    def test_conflicting_insert_raises(self, view_table):
        schema = DiffSchema(INSERT, "V", ("did", "pid"), post_attrs=("price",))
        diff = Diff(schema, [("D1", "P1", 999)])
        with pytest.raises(IntegrityError):
            apply_diff(view_table, diff)


class TestApplyDelete:
    def test_example_2_4(self, view_table):
        """Deleting by pid=P1 removes both P1 tuples."""
        schema = DiffSchema(DELETE, "V", ("pid",), pre_attrs=("price",))
        diff = Diff(schema, [("P1", 10)])
        applied = apply_diff(view_table, diff)
        assert len(applied) == 2
        assert view_table.as_set() == {("D1", "P2", 20)}

    def test_overestimated_delete_noop(self, view_table):
        schema = DiffSchema(DELETE, "V", ("pid",))
        diff = Diff(schema, [("P9",)])
        applied = apply_diff(view_table, diff)
        assert len(applied) == 0
        assert len(view_table) == 3

    def test_delete_by_full_key(self, view_table):
        schema = DiffSchema(DELETE, "V", ("did", "pid"))
        apply_diff(view_table, Diff(schema, [("D1", "P2")]))
        assert view_table.as_set() == {("D1", "P1", 10), ("D2", "P1", 10)}


class TestEffectiveness:
    def test_effective_insert(self, view_table):
        schema = DiffSchema(INSERT, "V", ("did", "pid"), post_attrs=("price",))
        diff = Diff(schema, [("D3", "P2", 20)])
        apply_diff(view_table, diff)
        assert is_effective(diff, view_table)

    def test_ineffective_insert(self, view_table):
        schema = DiffSchema(INSERT, "V", ("did", "pid"), post_attrs=("price",))
        diff = Diff(schema, [("D9", "P9", 1)])
        assert not is_effective(diff, view_table)

    def test_effective_delete(self, view_table):
        schema = DiffSchema(DELETE, "V", ("pid",))
        diff = Diff(schema, [("P1",)])
        apply_diff(view_table, diff)
        assert is_effective(diff, view_table)

    def test_ineffective_delete(self, view_table):
        schema = DiffSchema(DELETE, "V", ("pid",))
        assert not is_effective(Diff(schema, [("P1",)]), view_table)

    def test_effective_update(self, view_table):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        apply_diff(view_table, diff)
        assert is_effective(diff, view_table)

    def test_ineffective_update(self, view_table):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P1", 10, 11)])
        assert not is_effective(diff, view_table)

    def test_update_on_absent_id_is_effective(self, view_table):
        """Dummy (overestimated) diff rows do not break effectiveness."""
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        diff = Diff(schema, [("P9", 1, 2)])
        assert is_effective(diff, view_table)

    def test_order_independence_of_effective_set(self, view_table):
        """Effective i-diffs commute (Section 2): any order, same result."""
        upd = Diff(
            DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",)),
            [("P2", 20, 25)],
        )
        ins = Diff(
            DiffSchema(INSERT, "V", ("did", "pid"), post_attrs=("price",)),
            [("D3", "P3", 30)],
        )
        dele = Diff(DiffSchema(DELETE, "V", ("pid",)), [("P1",)])

        import itertools

        results = []
        for order in itertools.permutations([upd, ins, dele]):
            table = Table(TableSchema("V", ("did", "pid", "price"), ("did", "pid")))
            table.load([("D1", "P1", 10), ("D2", "P1", 10), ("D1", "P2", 20)])
            for diff in order:
                apply_diff(table, diff)
            results.append(table.as_set())
        assert all(r == results[0] for r in results)
