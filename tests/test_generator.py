"""Tests for the 4-pass ∆-script generator (paper Section 4)."""

import pytest

from repro.core import ScriptGenerator, generate_base_schemas, has_mvd_risk
from repro.core.generator import CACHE_POLICIES
from repro.core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from repro.core.script import (
    ApplyDiffStep,
    ComputeDiffStep,
    MarkCacheUpdatedStep,
)
from repro.algebra import (
    Join,
    equi_join,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from repro.errors import RuleError
from repro.expr import col, lit
from tests.conftest import build_view_v, build_view_v_prime


def generate(db, plan, **kwargs):
    generator = ScriptGenerator("V", plan, **kwargs)
    return generator.generate(generate_base_schemas(generator.plan, db))


class TestCachePlacement:
    def test_aggregate_gets_intermediate_cache(self, running_example_db):
        generated = generate(running_example_db, build_view_v_prime(running_example_db))
        kinds = [spec.kind for spec in generated.cache_specs]
        assert kinds == ["intermediate"]

    def test_root_aggregate_uses_view_as_output(self, running_example_db):
        """Example 4.6: the view doubles as the output cache."""
        generated = generate(running_example_db, build_view_v_prime(running_example_db))
        assert all(s.kind != "output" for s in generated.cache_specs)

    def test_non_root_aggregate_gets_output_cache(self, running_example_db):
        agg = build_view_v_prime(running_example_db)
        plan = where(agg, col("cost").gt(lit(0)))
        generated = generate(running_example_db, plan)
        kinds = sorted(spec.kind for spec in generated.cache_specs)
        assert kinds == ["intermediate", "output"]

    def test_aggregate_over_scan_has_no_intermediate_cache(self, running_example_db):
        plan = group_by(
            scan(running_example_db, "parts"), ("pid",), [("sum", col("price"), "s")]
        )
        generated = generate(running_example_db, plan)
        assert generated.cache_specs == []

    def test_spj_view_has_no_caches(self, running_example_db):
        generated = generate(running_example_db, build_view_v(running_example_db))
        assert generated.cache_specs == []

    def test_opcache_per_aggregate(self, running_example_db):
        generated = generate(running_example_db, build_view_v_prime(running_example_db))
        assert len(generated.opcache_specs) == 1
        spec = generated.opcache_specs[0]
        assert "__n" in spec.columns
        assert "__cnt_cost" in spec.columns  # sum tracks non-null counts

    def test_mvd_risk_policies(self, running_example_db):
        from repro.core import annotate_plan

        parts = scan(running_example_db, "parts")
        devices = rename(
            scan(running_example_db, "devices"), {"did": "d", "category": "c"}
        )
        cross = annotate_plan(Join(parts, devices, None))
        assert has_mvd_risk(cross, "equi")
        assert has_mvd_risk(cross, "fk")
        # A non-key equi join: risky under fk, fine under equi.
        dp1 = scan(running_example_db, "devices_parts")
        dp2 = rename(
            scan(running_example_db, "devices_parts"), {"did": "d2", "pid": "p2"}
        )
        mn = annotate_plan(Join(dp1, dp2, col("did").eq(col("d2"))))
        assert not has_mvd_risk(mn, "equi")
        assert has_mvd_risk(mn, "fk")
        # Key-join chains are safe under both.
        keyed = annotate_plan(build_view_v_prime(running_example_db).child)
        assert not has_mvd_risk(keyed, "equi")
        assert not has_mvd_risk(keyed, "fk")
        with pytest.raises(RuleError):
            has_mvd_risk(keyed, "bogus")
        assert "bogus" not in CACHE_POLICIES


class TestScriptStructure:
    def test_figure7_script_shape(self, running_example_db):
        """The V' script has the Figure 7 structure: compute the cache
        diff, APPLY it with RETURNING, then the blocking γ-sum step
        maintains the view from the expansion."""
        generated = generate(running_example_db, build_view_v_prime(running_example_db))
        steps = generated.script.steps
        applies = [s for s in steps if isinstance(s, ApplyDiffStep)]
        assert applies, "expected cache APPLY steps"
        assert all(s.returning_name is not None for s in applies)
        marks = [s for s in steps if isinstance(s, MarkCacheUpdatedStep)]
        assert len(marks) == 1
        agg_steps = [s for s in steps if isinstance(s, AssociativeAggregateStep)]
        assert len(agg_steps) == 1
        assert all(kind == "expansion" for kind, _ in agg_steps[0].inputs)
        # The aggregate step comes after the cache is marked updated.
        assert steps.index(marks[0]) < steps.index(agg_steps[0])

    def test_apply_order_is_delete_update_insert(self, running_example_db):
        generated = generate(running_example_db, build_view_v(running_example_db))
        kinds = []
        by_name = {
            s.name: s.schema.kind
            for s in generated.script.steps
            if isinstance(s, ComputeDiffStep)
        }
        for step in generated.script.steps:
            if isinstance(step, ApplyDiffStep):
                kinds.append(by_name[step.diff_name])
        order = {"-": 0, "u": 1, "+": 2}
        assert kinds == sorted(kinds, key=order.__getitem__)

    def test_minmax_uses_general_step(self, running_example_db):
        plan = group_by(
            scan(running_example_db, "parts"),
            ("pid",),
            [("max", col("price"), "top")],
        )
        generated = generate(running_example_db, plan)
        assert any(
            isinstance(s, GeneralAggregateStep) for s in generated.script.steps
        )

    def test_script_describe_is_readable(self, running_example_db):
        generated = generate(running_example_db, build_view_v_prime(running_example_db))
        text = generated.script.describe()
        assert "APPLY" in text
        assert "γ" in text
        assert "RETURNING" in text

    def test_unoptimized_script_is_larger(self, running_example_db):
        from repro.core.minimize import estimate_probe_count

        def probe_total(optimize):
            generated = generate(
                running_example_db,
                build_view_v(running_example_db),
                optimize=optimize,
            )
            return sum(
                estimate_probe_count(s.ir)
                for s in generated.script.steps
                if isinstance(s, ComputeDiffStep)
            )

        assert probe_total(False) > probe_total(True)

    def test_base_schema_names_are_referenced(self, running_example_db):
        from repro.core import schema_instance_name
        from repro.core.ir import diff_sources_of

        generated = generate(running_example_db, build_view_v(running_example_db))
        names = {schema_instance_name(s) for s in generated.base_schemas}
        referenced = set()
        for step in generated.script.steps:
            if isinstance(step, ComputeDiffStep):
                referenced |= {d.name for d in diff_sources_of(step.ir)}
        # Every referenced base diff exists; updates on parts.price are
        # certainly used.
        assert referenced & names
        assert all(r in names or r.startswith("d") for r in referenced)


class TestMultipleAliases:
    def test_diff_propagates_through_every_alias(self, running_example_db):
        """Section 4, footnote 5: a table appearing under several aliases
        gets one branch per scan operator."""
        p1 = scan(running_example_db, "parts")
        p2 = scan(running_example_db, "parts", alias="p2")
        plan = project_columns(
            Join(p1, p2, col("price").lt(col("p2_price"))),
            ("pid", "p2_pid"),
        )
        generated = generate(running_example_db, plan)
        compute_targets = [
            s.name for s in generated.script.steps if isinstance(s, ComputeDiffStep)
        ]
        # Both alias branches produce steps (more than a single chain's
        # worth for the three diff kinds).
        assert len(compute_targets) >= 6
