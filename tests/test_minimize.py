"""Tests for Pass 4: the Figure 8 semantic-minimization rewrites."""

import pytest

from repro.core.diffs import DELETE, INSERT, UPDATE, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import (
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    ProbeJoin,
    ProbeSemi,
    UnionRows,
)
from repro.core.minimize import estimate_probe_count, minimize_ir
from repro.algebra import scan
from repro.expr import TRUE, col, lit


@pytest.fixture
def parts_scan(running_example_db):
    node = annotate_plan(scan(running_example_db, "parts"))
    return node


def _update_schema(node):
    return DiffSchema(
        UPDATE, f"n{node.node_id}", ("pid",), pre_attrs=("price",), post_attrs=("price",)
    )


def _insert_schema(node):
    return DiffSchema(INSERT, f"n{node.node_id}", ("pid",), post_attrs=("price",))


def _delete_schema(node):
    return DiffSchema(DELETE, f"n{node.node_id}", ("pid",), pre_attrs=("price",))


class TestFigure8ProbeJoin:
    def test_update_probe_becomes_projection(self, parts_scan):
        """∆u ⋈Ī R → π(∆u) when the kept columns are derivable."""
        source = DiffSource("d", _update_schema(parts_scan))
        probe = ProbeJoin(
            source, parts_scan, "post", on=[("pid", "pid")], keep=[("v__price", "price")]
        )
        out = minimize_ir(probe)
        assert estimate_probe_count(out) == 0
        assert isinstance(out, Compute)
        assert out.columns == probe.columns

    def test_insert_probe_becomes_projection(self, parts_scan):
        source = DiffSource("d", _insert_schema(parts_scan))
        probe = ProbeJoin(
            source, parts_scan, "post", on=[("pid", "pid")], keep=[("v__price", "price")]
        )
        assert estimate_probe_count(minimize_ir(probe)) == 0

    def test_delete_post_probe_is_empty(self, parts_scan):
        """Figure 8: ∆− ⋈Ī R → ∅ (C2)."""
        source = DiffSource("d", _delete_schema(parts_scan))
        probe = ProbeJoin(source, parts_scan, "post", on=[("pid", "pid")], keep=[])
        assert isinstance(minimize_ir(probe), Empty)

    def test_pre_state_probe_is_kept(self, parts_scan):
        """Pre-state probes realize multiplicity and are never elided."""
        source = DiffSource("d", _delete_schema(parts_scan))
        probe = ProbeJoin(
            source, parts_scan, "pre", on=[("pid", "pid")], keep=[("v__price", "price")]
        )
        assert estimate_probe_count(minimize_ir(probe)) == 1

    def test_underivable_keep_is_kept(self, running_example_db):
        """An update diff without the needed post value must still probe."""
        node = annotate_plan(scan(running_example_db, "devices"))
        schema = DiffSchema(
            UPDATE, f"n{node.node_id}", ("did",), post_attrs=("category",)
        )
        # 'category' is derivable but imagine probing for a different
        # column the diff lacks: derivability fails for nothing here, so
        # construct an update lacking pre values for a non-updated col.
        source = DiffSource("d", schema)
        probe = ProbeJoin(
            source, node, "pre", on=[("did", "did")], keep=[("v__category", "category")]
        )
        assert estimate_probe_count(minimize_ir(probe)) == 1

    def test_sibling_probe_is_kept(self, running_example_db):
        """Probes of a *different* subview are genuine joins."""
        parts = annotate_plan(scan(running_example_db, "parts"))
        dp = annotate_plan(scan(running_example_db, "devices_parts"))
        dp.node_id = 99  # distinct subview
        schema = DiffSchema(
            UPDATE, f"n{parts.node_id}", ("pid",), post_attrs=("price",)
        )
        probe = ProbeJoin(
            DiffSource("d", schema), dp, "post", on=[("pid", "pid")], keep=[("did", "did")]
        )
        assert estimate_probe_count(minimize_ir(probe)) == 1

    def test_rewrite_through_filters(self, parts_scan):
        source = Filter(
            DiffSource("d", _update_schema(parts_scan)),
            col("price__post").gt(lit(0)),
        )
        probe = ProbeJoin(
            source, parts_scan, "post", on=[("pid", "pid")], keep=[("v__price", "price")]
        )
        assert estimate_probe_count(minimize_ir(probe)) == 0

    def test_residual_preserved_after_rewrite(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        probe = ProbeJoin(
            source,
            parts_scan,
            "post",
            on=[("pid", "pid")],
            keep=[("v__price", "price")],
            residual=col("v__price").gt(lit(5)),
        )
        out = minimize_ir(probe)
        assert estimate_probe_count(out) == 0
        assert isinstance(out, Filter)


class TestFigure8ProbeSemi:
    def test_update_semijoin_dropped(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        semi = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")])
        assert minimize_ir(semi) is source

    def test_delete_semijoin_empty(self, parts_scan):
        source = DiffSource("d", _delete_schema(parts_scan))
        semi = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")])
        assert isinstance(minimize_ir(semi), Empty)

    def test_delete_antijoin_passthrough(self, parts_scan):
        source = DiffSource("d", _delete_schema(parts_scan))
        semi = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")], negated=True)
        assert minimize_ir(semi) is source

    def test_insert_antijoin_empty(self, parts_scan):
        source = DiffSource("d", _insert_schema(parts_scan))
        semi = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")], negated=True)
        assert isinstance(minimize_ir(semi), Empty)

    def test_semijoin_residual_becomes_filter(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        semi = ProbeSemi(
            source,
            parts_scan,
            "post",
            on=[("pid", "pid")],
            residual=col("sub__price").gt(lit(5)),
        )
        out = minimize_ir(semi)
        assert isinstance(out, Filter)
        assert estimate_probe_count(out) == 0


class TestCleanups:
    def test_true_filter_removed(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        assert minimize_ir(Filter(source, TRUE)) is source

    def test_adjacent_filters_merge(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        stacked = Filter(
            Filter(source, col("price__pre").gt(lit(1))),
            col("price__post").gt(lit(2)),
        )
        out = minimize_ir(stacked)
        assert isinstance(out, Filter)
        assert not isinstance(out.child, Filter)

    def test_identity_compute_removed(self, parts_scan):
        source = DiffSource("d", _update_schema(parts_scan))
        identity = Compute(source, [(c, col(c)) for c in source.columns])
        assert minimize_ir(identity) is source

    def test_empty_propagates_through_union(self, parts_scan):
        source = DiffSource("d", _delete_schema(parts_scan))
        dead = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")])
        union = UnionRows([dead, source])
        assert minimize_ir(union) is source

    def test_all_empty_union(self, parts_scan):
        source = DiffSource("d", _delete_schema(parts_scan))
        dead = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")])
        assert isinstance(minimize_ir(UnionRows([dead])), Empty)

    def test_distinct_over_empty(self, parts_scan):
        source = DiffSource("d", _delete_schema(parts_scan))
        dead = ProbeSemi(source, parts_scan, "post", on=[("pid", "pid")])
        assert isinstance(minimize_ir(Distinct(dead)), Empty)
