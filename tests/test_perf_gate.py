"""The perf-regression gate (:mod:`repro.bench.perfgate`).

The gate holds the benchmarks' access-count payloads to exact equality
against committed baselines and wall-clock fields to a slack factor;
these tests pin the red/green behaviour the CI job relies on.
"""

from __future__ import annotations

import copy
import json

from repro.bench.perfgate import (
    WALL_FLOOR_SECONDS,
    compare_payloads,
    run_gate,
)

PAYLOAD = {
    "schema": "repro.bench",
    "version": 1,
    "name": "example",
    "data": {
        "diff_size": 100,
        "systems": {
            "idIVM": {
                "accesses": {
                    "index_lookups": 100,
                    "tuple_reads": 0,
                    "tuple_writes": 197,
                },
                "wall_seconds": 0.5,
                "correct": True,
            }
        },
        "rows": [[5, 12.0], [10, 22.0]],
    },
}


def _fresh():
    return copy.deepcopy(PAYLOAD)


class TestComparePayloads:
    def test_identical_payload_passes(self):
        assert compare_payloads(PAYLOAD, _fresh()) == []

    def test_access_count_drift_is_a_violation(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["accesses"]["tuple_writes"] = 240
        violations = compare_payloads(PAYLOAD, fresh)
        assert len(violations) == 1
        assert "tuple_writes" in violations[0]
        assert "197 -> 240" in violations[0]

    def test_improvement_is_also_a_drift(self):
        # Exact means exact: an unexplained improvement means the
        # baseline no longer describes the code and must be refreshed.
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["accesses"]["tuple_writes"] = 150
        assert compare_payloads(PAYLOAD, fresh)

    def test_wall_time_within_slack_passes(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["wall_seconds"] = 1.2
        assert compare_payloads(PAYLOAD, fresh, wall_slack=3.0) == []

    def test_wall_time_beyond_slack_fails(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["wall_seconds"] = 2.0
        violations = compare_payloads(PAYLOAD, fresh, wall_slack=3.0)
        assert len(violations) == 1
        assert "wall time" in violations[0]

    def test_wall_time_speedup_never_fails(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["wall_seconds"] = 0.001
        assert compare_payloads(PAYLOAD, fresh) == []

    def test_tiny_wall_times_never_gate(self):
        base = {"wall_seconds": 0.0001}
        fresh = {"wall_seconds": WALL_FLOOR_SECONDS * 2.9}
        assert compare_payloads(base, fresh, wall_slack=3.0) == []

    def test_missing_metric_is_a_violation(self):
        fresh = _fresh()
        del fresh["data"]["systems"]["idIVM"]["accesses"]["tuple_reads"]
        violations = compare_payloads(PAYLOAD, fresh)
        assert any("missing from fresh" in v for v in violations)

    def test_extra_metric_is_a_violation(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["accesses"]["spills"] = 3
        violations = compare_payloads(PAYLOAD, fresh)
        assert any("not in baseline" in v for v in violations)

    def test_list_length_change_is_a_violation(self):
        fresh = _fresh()
        fresh["data"]["rows"].append([20, 42.0])
        assert any("length" in v for v in compare_payloads(PAYLOAD, fresh))

    def test_nested_list_numbers_compare_exactly(self):
        fresh = _fresh()
        fresh["data"]["rows"][1][1] = 23.0
        assert compare_payloads(PAYLOAD, fresh)

    def test_bool_flip_is_a_violation(self):
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["correct"] = False
        assert compare_payloads(PAYLOAD, fresh)


class TestRunGate:
    def test_missing_baseline_is_a_violation(self, tmp_path):
        violations = run_gate("example", _fresh(), tmp_path)
        assert len(violations) == 1
        assert "no committed baseline" in violations[0]

    def test_green_against_committed_baseline(self, tmp_path):
        (tmp_path / "BENCH_example.json").write_text(json.dumps(PAYLOAD))
        assert run_gate("example", _fresh(), tmp_path) == []

    def test_red_on_injected_regression(self, tmp_path):
        (tmp_path / "BENCH_example.json").write_text(json.dumps(PAYLOAD))
        fresh = _fresh()
        fresh["data"]["systems"]["idIVM"]["accesses"]["index_lookups"] = 130
        violations = run_gate("example", fresh, tmp_path)
        assert violations and "index_lookups" in violations[0]


class TestCommittedBaselines:
    def test_gated_benchmarks_have_baselines(self):
        """Every module in the Makefile's PERF_GATE_BENCHES list has a
        committed reference payload (speedup_model writes two)."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        baselines = {p.name for p in (root / "benchmarks/baselines").glob("*.json")}
        for name in (
            "table2_spj_costs",
            "table3_agg_costs",
            "speedup_model_spj",
            "speedup_model_agg",
            "eager_vs_deferred",
            "minimization",
        ):
            assert f"BENCH_{name}.json" in baselines, name

    def test_baseline_envelopes_are_wellformed(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        for path in (root / "benchmarks/baselines").glob("BENCH_*.json"):
            payload = json.loads(path.read_text())
            assert payload["schema"] == "repro.bench", path.name
            assert path.name == f"BENCH_{payload['name']}.json"


class TestEnvelopeVolatileKeys:
    """provenance/metrics blocks never gate; seconds-histograms slack."""

    def test_provenance_and_metrics_are_skipped(self):
        fresh = _fresh()
        fresh["provenance"] = {"git_sha": "abc123", "timestamp": "now"}
        fresh["metrics"] = {"engine.round_seconds": {"type": "loghist"}}
        assert compare_payloads(PAYLOAD, fresh) == []

    def test_missing_provenance_in_fresh_is_fine_too(self):
        baseline = _fresh()
        baseline["provenance"] = {"git_sha": "old"}
        assert compare_payloads(baseline, _fresh()) == []

    def test_volatile_names_still_gate_below_top_level(self):
        baseline = _fresh()
        baseline["data"]["metrics"] = {"x": 1}
        fresh = _fresh()
        fresh["data"]["metrics"] = {"x": 2}
        assert compare_payloads(baseline, fresh)

    @staticmethod
    def _wall_hist(p95=0.02, count=4):
        return {
            "type": "loghist",
            "unit": "seconds",
            "count": count,
            "sum": 0.05,
            "min": 0.005,
            "max": 0.03,
            "mean": 0.0125,
            "zero_count": 0,
            "buckets": {"8": 2, "9": 2},
            "p50": 0.01,
            "p95": p95,
            "p99": p95,
        }

    def test_seconds_histogram_within_slack_passes(self):
        baseline, fresh = _fresh(), _fresh()
        baseline["data"]["round_seconds"] = self._wall_hist(p95=0.02)
        fresh["data"]["round_seconds"] = self._wall_hist(p95=0.04)
        fresh["data"]["round_seconds"]["buckets"] = {"10": 4}  # moved: ok
        assert compare_payloads(baseline, fresh, wall_slack=3.0) == []

    def test_seconds_histogram_gross_slowdown_fails(self):
        baseline, fresh = _fresh(), _fresh()
        baseline["data"]["round_seconds"] = self._wall_hist(p95=0.2)
        fresh["data"]["round_seconds"] = self._wall_hist(p95=0.9)
        violations = compare_payloads(baseline, fresh, wall_slack=3.0)
        assert violations
        assert any("p95" in v for v in violations)

    def test_seconds_histogram_count_is_exact(self):
        # the observation count is a workload fact (rounds run), held
        # exactly even though the values are wall clock
        baseline, fresh = _fresh(), _fresh()
        baseline["data"]["round_seconds"] = self._wall_hist(count=4)
        fresh["data"]["round_seconds"] = self._wall_hist(count=5)
        violations = compare_payloads(baseline, fresh)
        assert any(".count" in v for v in violations)

    def test_rows_histograms_still_compare_exactly(self):
        baseline, fresh = _fresh(), _fresh()
        hist = self._wall_hist()
        hist["unit"] = "rows"
        baseline["data"]["fold_rows"] = copy.deepcopy(hist)
        fresh["data"]["fold_rows"] = copy.deepcopy(hist)
        fresh["data"]["fold_rows"]["buckets"] = {"10": 4}
        assert compare_payloads(baseline, fresh)
