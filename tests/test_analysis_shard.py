"""Pass 4 (shard) unit tests: SH401/SH402 against the live router."""

from __future__ import annotations

from repro.algebra import group_by, scan
from repro.analysis import AnalysisContext, analyze_generated, run_passes
from repro.core.generator import ScriptGenerator
from repro.core.schema_gen import generate_base_schemas
from repro.expr import Col
from repro.storage import Database
from repro.workloads.devices import (
    DevicesConfig,
    build_aggregate_view,
    build_database,
    build_flat_view,
)


def generate(db, plan):
    generator = ScriptGenerator("V", plan)
    return generator.generate(generate_base_schemas(generator.plan, db))


def shard_diags(generated, db):
    report = analyze_generated(generated, db=db, names=["shard"])
    return report.diagnostics


def test_flat_view_partially_routable_no_sh401():
    """Price updates route via anchor parts (the test_sharded contract),
    so the view is not *always* broadcast: SH402 info only."""
    cfg = DevicesConfig(n_parts=10, n_devices=10, diff_size=2, fanout=2)
    db = build_database(cfg)
    diags = shard_diags(generate(db, build_flat_view(db, cfg)), db)
    assert [d.rule_id for d in diags] == ["SH402"]
    [info] = diags
    assert "base_u_parts__price via anchor parts" in info.message
    assert "base_ins_parts" in info.message  # inserts broadcast, with reason


def test_aggregate_view_routes_only_devices_side():
    """γ(did) keeps the devices anchor but drops parts: update rounds on
    parts must show as broadcast with the group-keys reason."""
    cfg = DevicesConfig(n_parts=10, n_devices=10, diff_size=2, fanout=2)
    db = build_database(cfg)
    [info] = shard_diags(generate(db, build_aggregate_view(db, cfg)), db)
    assert info.rule_id == "SH402"
    assert "base_u_devices__category via anchor devices" in info.message
    assert "group keys" in info.message


def test_sh401_on_view_with_no_routable_round():
    """min/max γ runs the general (recompute) rule: the router refuses
    every round, and the pass must surface the silent fallback."""
    db = Database()
    db.create_table(
        "t", ("k", "g", "v"), ("k",), nullable=(), types={c: "int" for c in ("k", "g", "v")}
    )
    db.table("t").load([(1, 1, 10)])
    plan = group_by(scan(db, "t"), ["g"], [("min", Col("v"), "lowest")])
    diags = shard_diags(generate(db, plan), db)
    sh401 = [d for d in diags if d.rule_id == "SH401"]
    assert len(sh401) == 1 and sh401[0].severity == "warning"
    assert "broadcast" in sh401[0].message


def test_shard_pass_skips_without_database():
    cfg = DevicesConfig(n_parts=10, n_devices=10, diff_size=2, fanout=2)
    db = build_database(cfg)
    generated = generate(db, build_flat_view(db, cfg))
    ctx = AnalysisContext(
        plan=generated.plan,
        script=generated.script,
        base_schemas=list(generated.base_schemas),
        generated=generated,
        db=None,
    )
    assert run_passes(ctx, ["shard"]).diagnostics == []
