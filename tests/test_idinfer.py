"""Tests for Pass 1: ID inference (Table 1) and plan extension."""

import pytest

from repro.algebra import (
    AntiJoin,
    GroupBy,
    Join,
    Project,
    Scan,
    Select,
    UnionAll,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from repro.core.idinfer import annotate_plan, node_by_id
from repro.errors import PlanError
from repro.expr import col, lit


class TestIdRules:
    def test_scan_ids_are_table_key(self, running_example_db):
        node = annotate_plan(scan(running_example_db, "devices_parts"))
        assert node.ids == ("did", "pid")

    def test_select_preserves_ids(self, running_example_db):
        node = annotate_plan(
            where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        )
        assert node.ids == ("did",)

    def test_join_ids_union(self, running_example_db):
        parts = scan(running_example_db, "parts")
        devices = rename(scan(running_example_db, "devices"), {"did": "d", "category": "c"})
        node = annotate_plan(Join(parts, devices, None))
        assert node.ids == ("pid", "d")

    def test_equi_join_ids_pruned(self, running_example_db, view_v):
        """The running example's view has IDs exactly {did, pid} (Ex. 2.1)."""
        node = annotate_plan(view_v)
        assert set(node.ids) == {"did", "pid"}
        assert node.columns == ("did", "pid", "price")

    def test_antijoin_keeps_left_ids(self, running_example_db):
        devices = scan(running_example_db, "devices")
        dp = rename(scan(running_example_db, "devices_parts"), {"did": "dd", "pid": "dp"})
        node = annotate_plan(AntiJoin(devices, dp, col("did").eq(col("dd"))))
        assert node.ids == ("did",)

    def test_union_ids_include_branch(self, running_example_db):
        phones = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        tablets = where(scan(running_example_db, "devices"), col("category").eq(lit("tablet")))
        node = annotate_plan(UnionAll(phones, tablets))
        assert node.ids == ("did", "b")

    def test_groupby_ids_are_keys(self, running_example_db, view_v_prime):
        node = annotate_plan(view_v_prime)
        assert node.ids == ("did",)

    def test_projection_extended_with_missing_ids(self, running_example_db):
        # Project away the key; Pass 1 must add it back.
        node = project_columns(scan(running_example_db, "parts"), ("price",))
        annotated = annotate_plan(node)
        assert annotated.ids == ("pid",)
        assert "pid" in annotated.columns

    def test_projection_rename_tracks_ids(self, running_example_db):
        node = rename(scan(running_example_db, "parts"), {"pid": "part_id"})
        annotated = annotate_plan(node)
        assert annotated.ids == ("part_id",)

    def test_extension_conflict_raises(self, running_example_db):
        # A computed column steals the ID's name -> extension impossible.
        node = Project(
            scan(running_example_db, "parts"),
            [("pid", col("price") * lit(2))],
        )
        with pytest.raises(PlanError):
            annotate_plan(node)

    def test_extension_preserves_results_modulo_projection(
        self, running_example_db
    ):
        """Extending with IDs only widens the view (Section 4, Pass 1)."""
        from repro.algebra import evaluate_plan

        node = project_columns(scan(running_example_db, "parts"), ("price",))
        annotated = annotate_plan(node)
        original = evaluate_plan(node, running_example_db)
        extended = evaluate_plan(annotated, running_example_db)
        assert len(original) == len(extended)
        price_idx = extended.position("price")
        assert sorted(r[price_idx] for r in extended.rows) == sorted(
            r[0] for r in original.rows
        )


class TestNodeNumbering:
    def test_preorder_numbering(self, running_example_db, view_v_prime):
        annotated = annotate_plan(view_v_prime)
        ids = [n.node_id for n in annotated.walk()]
        assert ids == list(range(len(ids)))

    def test_node_by_id(self, running_example_db, view_v_prime):
        annotated = annotate_plan(view_v_prime)
        assert node_by_id(annotated, 0) is annotated
        with pytest.raises(PlanError):
            node_by_id(annotated, 999)

    def test_groupby_child_carries_its_ids(self, running_example_db, view_v_prime):
        """Invariant: every annotated node's output contains its IDs."""
        annotated = annotate_plan(view_v_prime)
        for node in annotated.walk():
            assert set(node.ids) <= set(node.columns), node
