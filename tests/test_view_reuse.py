"""Tests for the Section 9 extension: insert i-diffs answered from the
view, with dynamic run-time fallback."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import Join, equi_join, evaluate_plan, project_columns, rename, scan
from repro.core import IdIvmEngine
from repro.expr import col
from repro.storage import Database


def make_db() -> Database:
    """Orders joining a bushy product+stock subtree — the shape where
    view reuse saves multi-hop probes."""
    db = Database()
    db.create_table("orders", ("oid", "sku"), ("oid",))
    db.create_table("products", ("p_sku", "price"), ("p_sku",))
    db.create_table("stock", ("s_sku", "qty"), ("s_sku",))
    db.table("orders").load([(1, "A"), (2, "B")])
    db.table("products").load([("A", 10), ("B", 20), ("C", 30)])
    db.table("stock").load([("A", 5), ("B", 6), ("C", 7)])
    return db


def bushy_view(db: Database):
    """orders ⋈ (products ⋈ stock): the join's right side is a subtree,
    so a base probe costs two hops but a view hit costs one."""
    product_info = equi_join(
        scan(db, "products"),
        rename(scan(db, "stock"), {"s_sku": "st_sku"}),
        [("p_sku", "st_sku")],
    )
    return Join(scan(db, "orders"), product_info, col("sku").eq(col("p_sku")))


class TestHintAttachment:
    def test_hint_attached_for_bushy_probe(self):
        from repro.core import ScriptGenerator, generate_base_schemas
        from repro.core.ir import ProbeJoin
        from repro.core.script import ComputeDiffStep

        db = make_db()
        generator = ScriptGenerator("V", bushy_view(db), view_reuse=True)
        generated = generator.generate(
            generate_base_schemas(generator.plan, db)
        )
        hinted = [
            ir_node
            for step in generated.script.steps
            if isinstance(step, ComputeDiffStep)
            for ir_node in step.ir.walk()
            if isinstance(ir_node, ProbeJoin) and ir_node.via_output is not None
        ]
        assert hinted, "expected at least one view-reuse hint"
        for probe in hinted:
            assert probe.via_output.mat_node_id == generated.plan.node_id
            assert set(probe.via_output.guard_tables) <= {
                "orders", "products", "stock"
            }

    def test_no_hints_without_flag(self):
        from repro.core import ScriptGenerator, generate_base_schemas
        from repro.core.ir import ProbeJoin
        from repro.core.script import ComputeDiffStep

        db = make_db()
        generator = ScriptGenerator("V", bushy_view(db))
        generated = generator.generate(generate_base_schemas(generator.plan, db))
        assert all(
            ir_node.via_output is None
            for step in generated.script.steps
            if isinstance(step, ComputeDiffStep)
            for ir_node in step.ir.walk()
            if isinstance(ir_node, ProbeJoin)
        )


class TestRuntimeBehaviour:
    def test_insert_answered_from_view(self):
        """A new order for an already-viewed product hits the view."""
        db = make_db()
        engine = IdIvmEngine(db, view_reuse=True)
        view = engine.define_view("V", bushy_view(db))
        engine.log.insert("orders", (9, "A"))
        report = engine.maintain()["V"]
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected
        # One view-index hit instead of the two-hop base probe: the
        # products and stock tables are never read.
        baseline = self._cost_without_reuse([(9, "A")])
        assert report.total_cost < baseline

    def test_miss_falls_back_to_base_probe(self):
        """A new order for product C (absent from the view) still joins
        correctly via the fallback."""
        db = make_db()
        engine = IdIvmEngine(db, view_reuse=True)
        view = engine.define_view("V", bushy_view(db))
        engine.log.insert("orders", (9, "C"))
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected
        assert any(row[1] == "C" for row in view.table.as_set())

    def test_reuse_disabled_when_guard_tables_change(self):
        """If the probed tables changed in the same batch the hint must
        not fire (the view is stale for them)."""
        db = make_db()
        engine = IdIvmEngine(db, view_reuse=True)
        view = engine.define_view("V", bushy_view(db))
        engine.log.update("products", ("A",), {"price": 11})
        engine.log.insert("orders", (9, "A"))
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected
        assert (9, "A", "A", 11, "A", 5) in view.table.as_set()

    @staticmethod
    def _cost_without_reuse(new_orders) -> int:
        db = make_db()
        engine = IdIvmEngine(db, view_reuse=False)
        engine.define_view("V", bushy_view(db))
        for oid, sku in new_orders:
            engine.log.insert("orders", (oid, sku))
        return engine.maintain()["V"].total_cost


@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    orders=st.lists(
        st.tuples(st.integers(0, 20), st.sampled_from("ABC")), max_size=6
    ).map(lambda rows: list({r[0]: r for r in rows}.values())),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["ins_o", "del_o", "upd_p", "upd_s", "ins_o2"]),
            st.integers(0, 100),
            st.integers(0, 50),
        ),
        max_size=8,
    ),
)
def test_view_reuse_property(orders, ops):
    """With and without reuse, results equal recomputation."""
    views = []
    engines = []
    for reuse in (True, False):
        db = make_db()
        for row in orders:
            if db.table("orders").get_uncounted((row[0],)) is None:
                db.table("orders").insert_uncounted(row)
        engine = IdIvmEngine(db, view_reuse=reuse)
        engines.append(engine)
        views.append(engine.define_view("V", bushy_view(db)))
    for i, (kind, seed, v) in enumerate(ops):
        for engine in engines:
            db = engine.db
            if kind in ("ins_o", "ins_o2"):
                engine.log.insert("orders", (500 + i, "ABC"[v % 3]))
            elif kind == "del_o":
                keys = sorted(k for (k,) in db.table("orders")._rows)
                if keys:
                    engine.log.delete("orders", (keys[seed % len(keys)],))
            elif kind == "upd_p":
                engine.log.update("products", ("ABC"[v % 3],), {"price": v})
            else:
                engine.log.update("stock", ("ABC"[v % 3],), {"qty": v})
    for engine, view in zip(engines, views):
        engine.maintain()
        expected = evaluate_plan(view.plan, engine.db).as_set()
        assert view.table.as_set() == expected, f"reuse={engine.view_reuse}"
    assert views[0].table.as_set() == views[1].table.as_set()
