"""Unit tests for the differential fuzzer itself.

The fuzzer is test infrastructure, so it gets its own tests: generation
must be deterministic and self-consistent, the spec layer must round-trip
through JSON, the runner must hold all strategies to the oracle, and the
shrinker must minimize while preserving the failure property.
"""

from __future__ import annotations

import json

import pytest

from repro.crosscheck import (
    ALL_STRATEGIES,
    CaseGenerator,
    build_database,
    build_plan,
    case_label,
    corpus_files,
    expr_from_spec,
    expr_to_spec,
    generate_case,
    load_corpus_case,
    plan_tables,
    run_case,
    save_corpus_case,
    shrink_case,
)
from repro.expr import And, InList, Not, Or, col, lit


class TestGeneration:
    def test_same_seed_same_case(self):
        assert generate_case(7, 3) == generate_case(7, 3)

    def test_different_index_different_case(self):
        cases = [generate_case(0, i) for i in range(6)]
        assert len({json.dumps(c, sort_keys=True) for c in cases}) > 1

    def test_cases_are_independent_of_generation_order(self):
        """Case N must not depend on cases 0..N-1 having been generated."""
        assert generate_case(2, 5) == CaseGenerator(2 * 1_000_003 + 5).generate()

    def test_case_is_pure_json(self):
        case = generate_case(1, 0)
        assert case == json.loads(json.dumps(case))

    def test_generated_specs_build(self):
        for i in range(10):
            case = generate_case(4, i)
            db = build_database(case)
            plan = build_plan(case["plan"], db)
            assert plan_tables(case["plan"]) <= set(db.tables)
            assert plan.columns


class TestExprSpecRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            col("a").eq(lit(3)),
            Not(col("a").lt(col("b"))),
            And([col("a").gt(lit(0)), col("b").ne(lit("x"))]),
            Or([col("a").le(lit(None)), col("b").ge(lit(2))]),
            InList(col("a"), (1, None, "x")),
        ],
    )
    def test_round_trip(self, expr):
        assert expr_from_spec(expr_to_spec(expr)) == expr

    def test_spec_survives_json(self):
        spec = expr_to_spec(And([col("a").eq(lit(1)), Not(col("b").lt(lit(2)))]))
        assert expr_from_spec(json.loads(json.dumps(spec))) == expr_from_spec(spec)


class TestRunner:
    def test_generated_cases_are_clean(self):
        """A handful of the seed-0 stream, all strategies vs the oracle
        (the 100-case sweep is the CLI / CI job; this is the smoke)."""
        for i in range(6):
            result = run_case(generate_case(0, i))
            assert result.ok, "\n".join(str(d) for d in result.divergences)

    def test_divergence_reported_for_wrong_view(self):
        """A case whose 'view' rows are tampered with must diverge."""
        case = {
            "version": 1,
            "tables": [
                {"name": "t0", "columns": ["k", "c0"], "key": ["k"],
                 "rows": [[0, 1]]},
            ],
            "foreign_keys": [],
            "plan": {"op": "scan", "table": "t0", "alias": "s0"},
            "batches": [[{"op": "insert", "table": "t0", "row": [1, 2]}]],
        }
        clean = run_case(case)
        assert clean.ok
        # Same case, but the stream deletes a row the oracle keeps: the
        # runner builds both sides from the spec, so corrupt the spec for
        # one side only by checking a strategy against the *wrong* oracle.
        from repro.crosscheck.runner import oracle_states, run_strategy

        expected = oracle_states(case)
        expected[0][(99, 99)] += 1  # a row no engine will produce
        divergence = run_strategy(case, ALL_STRATEGIES[0], expected)
        assert divergence is not None
        assert divergence.kind == "view_mismatch"


class TestShrinker:
    def _base_case(self):
        return generate_case(0, 2)

    def test_shrink_preserves_predicate(self):
        """With a synthetic failure property, shrinking keeps the
        property true while making the case strictly no larger."""
        case = self._base_case()

        def has_update(candidate):
            return any(
                mod["op"] == "update"
                for batch in candidate["batches"]
                for mod in batch
            )

        # CaseGenerator guarantees at least one update per case, so the
        # predicate is satisfiable for every seed — no skip needed.
        assert has_update(case)
        small = shrink_case(case, predicate=has_update)
        assert has_update(small)
        n_mods = sum(len(b) for b in small["batches"])
        assert n_mods == 1  # a single update is the minimal witness
        assert len(small["batches"]) == 1

    def test_shrink_drops_unused_tables(self):
        case = self._base_case()

        def nonempty(candidate):
            return bool(candidate["tables"])

        small = shrink_case(case, predicate=nonempty)
        # The plan shrinks to a bare scan and every unread table goes.
        assert len(small["tables"]) <= len(plan_tables(case["plan"]))

    def test_shrink_does_not_mutate_input(self):
        case = self._base_case()
        snapshot = json.loads(json.dumps(case))
        shrink_case(case, predicate=lambda c: True)
        assert case == snapshot

    def test_passing_case_returned_unchanged(self):
        case = generate_case(0, 0)
        result = run_case(case)
        assert result.ok
        assert shrink_case(case, result) == case


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        case = generate_case(0, 1)
        path = save_corpus_case(
            case, "Some Bug! (x)", directory=tmp_path,
            label="why", divergence="[eager @ 0] ...",
        )
        assert path.name == "some_bug_x.json"
        loaded = load_corpus_case(path)
        assert loaded["label"] == "why"
        assert {k: loaded[k] for k in case} == case
        assert corpus_files(tmp_path) == [path]

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert corpus_files(tmp_path / "nope") == []

    def test_checked_in_corpus_loads(self):
        for path in corpus_files():
            case = load_corpus_case(path)
            assert case_label(case)
