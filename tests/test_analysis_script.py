"""Pass 3 (script) unit tests: SC301/302/304/305/306/307 on seeded scripts."""

from __future__ import annotations

from repro.algebra import group_by, scan, where
from repro.analysis import AnalysisContext, run_passes
from repro.core.diffs import insert_schema_for
from repro.core.idinfer import annotate_plan
from repro.core.ir import (
    POST,
    PRE,
    DiffSource,
    Filter,
    ProbeJoin,
    SubviewSource,
)
from repro.core.modlog import schema_instance_name
from repro.core.rules.aggregate import (
    AssociativeAggregateStep,
    GeneralAggregateStep,
    OpCacheSpec,
)
from repro.core.script import (
    PHASE_CACHE_DIFF,
    PHASE_VIEW_DIFF,
    ApplyDiffStep,
    ComputeDiffStep,
    DeltaScript,
    MarkCacheUpdatedStep,
)
from repro.expr import Cmp, Col, Lit
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        ("k", "a"),
        ("k",),
        nullable=("a",),
        types={"k": "int", "a": "int"},
    )
    db.table("t").load([(1, 5)])
    return db


def make_plan(db):
    """σ(a>0)(t): node 0 is the Select (view), node 1 the Scan."""
    return annotate_plan(where(scan(db, "t"), Cmp(">", Col("a"), Lit(0))))


def script_report(plan, steps, base_schemas, generated=None):
    ctx = AnalysisContext(
        plan=plan,
        script=DeltaScript(list(steps), plan.node_id),
        base_schemas=list(base_schemas),
        generated=generated,
    )
    return run_passes(ctx, ["script"])


def rule_ids(report):
    return [d.rule_id for d in report.diagnostics]


def base_ins(db):
    schema = insert_schema_for(db.table("t").schema)
    return schema, schema_instance_name(schema)


def test_sc301_read_of_undefined_diff():
    db = make_db()
    plan = make_plan(db)
    schema, _ = base_ins(db)
    steps = [
        ComputeDiffStep(
            "d1", schema, DiffSource("never_defined", schema), PHASE_VIEW_DIFF
        )
    ]
    report = script_report(plan, steps, [schema])
    [diag] = report.diagnostics
    assert diag.rule_id == "SC301" and diag.severity == "error"
    assert "never_defined" in diag.message


def test_sc301_base_instance_reads_are_defined():
    db = make_db()
    plan = make_plan(db)
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF)
    ]
    assert script_report(plan, steps, [schema]).diagnostics == []


def test_sc302_pre_read_during_cache_update_window():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF),
        ApplyDiffStep("d1", scan_node.node_id, "cache", PHASE_CACHE_DIFF),
        ComputeDiffStep(
            "d2", schema, SubviewSource(scan_node, PRE), PHASE_VIEW_DIFF
        ),
    ]
    report = script_report(plan, steps, [schema])
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC302"]
    assert diag.severity == "error"
    assert f"n{scan_node.node_id}" in diag.message


def test_sc302_clean_after_mark_and_for_post_reads():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF),
        # A post-state read inside the window recomputes from the post
        # database; a pre-state read after the mark hits valid caches.
        ApplyDiffStep("d1", scan_node.node_id, "cache", PHASE_CACHE_DIFF),
        ComputeDiffStep(
            "d2", schema, SubviewSource(scan_node, POST), PHASE_VIEW_DIFF
        ),
        MarkCacheUpdatedStep(scan_node.node_id, "cache"),
        ComputeDiffStep(
            "d3", schema, SubviewSource(scan_node, PRE), PHASE_VIEW_DIFF
        ),
    ]
    assert "SC302" not in rule_ids(script_report(plan, steps, [schema]))


def test_sc304_apply_after_mark_double_counts():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF),
        ApplyDiffStep("d1", scan_node.node_id, "cache", PHASE_CACHE_DIFF),
        MarkCacheUpdatedStep(scan_node.node_id, "cache"),
        ApplyDiffStep("d1", scan_node.node_id, "cache", PHASE_CACHE_DIFF),
    ]
    report = script_report(plan, steps, [schema])
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC304"]
    assert diag.severity == "error"


def test_sc304_view_applies_are_exempt():
    """The view (root) takes one apply per diff kind in the update phase;
    kind-ordered multi-applies after its mark are the normal shape."""
    db = make_db()
    plan = make_plan(db)
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF),
        ApplyDiffStep("d1", plan.node_id, "view", PHASE_VIEW_DIFF),
        MarkCacheUpdatedStep(plan.node_id, "view"),
        ApplyDiffStep("d1", plan.node_id, "view", PHASE_VIEW_DIFF),
    ]
    assert "SC304" not in rule_ids(script_report(plan, steps, [schema]))


def test_sc305_dead_returning_expansion():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    steps = [
        ComputeDiffStep("d1", schema, DiffSource(name, schema), PHASE_VIEW_DIFF),
        ApplyDiffStep(
            "d1",
            scan_node.node_id,
            "cache",
            PHASE_CACHE_DIFF,
            returning_name="ret_d1",
        ),
    ]
    report = script_report(plan, steps, [schema])
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC305"]
    assert diag.severity == "warning" and "ret_d1" in diag.message


def test_sc306_associative_step_over_min():
    db = make_db()
    gb = annotate_plan(group_by(scan(db, "t"), ["a"], [("min", Col("k"), "m")]))
    schema, name = base_ins(db)
    step = AssociativeAggregateStep(
        gb, [("diff", name)], "opc", "g", PHASE_CACHE_DIFF
    )
    report = script_report(gb, [step], [schema])
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC306"]
    assert diag.severity == "error" and "min" in diag.message


def test_sc306_general_step_over_min_is_clean():
    db = make_db()
    gb = annotate_plan(group_by(scan(db, "t"), ["a"], [("min", Col("k"), "m")]))
    schema, name = base_ins(db)
    step = GeneralAggregateStep(gb, [("diff", name)], "g", PHASE_CACHE_DIFF)
    assert "SC306" not in rule_ids(script_report(gb, [step], [schema]))


def test_sc306_opcache_placed_over_min():
    db = make_db()
    gb = annotate_plan(group_by(scan(db, "t"), ["a"], [("min", Col("k"), "m")]))
    schema, _ = base_ins(db)

    class FakeGenerated:
        opcache_specs = [OpCacheSpec(gb, "bad_opc")]

    report = script_report(gb, [], [schema], generated=FakeGenerated())
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC306"]
    assert "bad_opc" in diag.location


def test_sc307_probe_on_nullable_key():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    probe = ProbeJoin(
        DiffSource(name, schema),
        scan_node,
        POST,
        on=[("a__post", "a")],
        keep=[],
    )
    steps = [ComputeDiffStep("d1", schema, probe, PHASE_VIEW_DIFF)]
    report = script_report(plan, steps, [schema])
    [diag] = [d for d in report.diagnostics if d.rule_id == "SC307"]
    assert diag.severity == "warning"
    assert "a__post" in diag.message


def test_sc307_probe_on_key_columns_is_clean():
    db = make_db()
    plan = make_plan(db)
    scan_node = plan.child
    schema, name = base_ins(db)
    probe = ProbeJoin(
        DiffSource(name, schema), scan_node, POST, on=[("k", "k")], keep=[]
    )
    steps = [ComputeDiffStep("d1", schema, probe, PHASE_VIEW_DIFF)]
    assert "SC307" not in rule_ids(script_report(plan, steps, [schema]))


def test_generated_devices_scripts_are_script_clean():
    from repro.core.generator import ScriptGenerator
    from repro.core.schema_gen import generate_base_schemas
    from repro.workloads.devices import (
        DevicesConfig,
        build_aggregate_view,
        build_database,
        build_flat_view,
    )

    cfg = DevicesConfig(n_parts=10, n_devices=10, diff_size=2, fanout=2)
    db = build_database(cfg)
    for build in (build_flat_view, build_aggregate_view):
        generator = ScriptGenerator("V", build(db, cfg))
        generated = generator.generate(generate_base_schemas(generator.plan, db))
        ctx = AnalysisContext(
            plan=generated.plan,
            script=generated.script,
            base_schemas=list(generated.base_schemas),
            generated=generated,
        )
        assert run_passes(ctx, ["script"]).diagnostics == []
