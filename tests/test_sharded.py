"""Shard-parallel maintenance: routing, equivalence, counter fan-out.

The equivalence tests are the heart: for every shard count the sharded
engine must produce byte-identical view contents AND merged per-phase
access counts that reconcile exactly with the single-shard run —
whether the router proved the round parallel or fell back to broadcast.

Set ``REPRO_SHARDS=1,4`` (the CI matrix does) to restrict the shard
counts exercised by the equivalence tests, and ``REPRO_BACKEND=thread``
(or ``process``) to restrict the execution backends.  The process
backend spawns real worker processes, so its equivalence coverage runs
at bounded shard counts (≤ 4) to keep the suite quick.
``REPRO_RACE_CHECK=true`` (or ``strict``, as the CI matrix sets) runs
every sharded engine built here with the dynamic write-set race
detector armed — the equivalence suite then doubles as a
disjointness-proof checker on real workloads.
"""

from __future__ import annotations

import os

import pytest

from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine, ShardedEngine
from repro.shard import ShardRoutingCounters, shard_of
from repro.storage import (
    AccessCounts,
    CounterSet,
    Database,
    PartitionedDatabase,
    PartitionedTable,
    partition_database,
)
from repro.storage.schema import TableSchema
from repro.workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_bsma_database,
    build_devices_database,
    log_user_updates,
)
from repro.workloads.devices import (
    build_flat_view,
    log_batch,
    mixed_modification_batch,
)

SHARD_COUNTS = tuple(
    int(v) for v in os.environ.get("REPRO_SHARDS", "1,2,4,8").split(",")
)
BACKENDS = tuple(
    b.strip()
    for b in os.environ.get("REPRO_BACKEND", "thread,process").split(",")
    if b.strip()
)

DEV_CONFIG = DevicesConfig(n_parts=80, n_devices=80, diff_size=24)
BSMA_CONFIG = BsmaConfig(n_users=150)

_RACE_ENV = os.environ.get("REPRO_RACE_CHECK", "").strip().lower()
#: False | True | "strict" — threaded through every engine built here.
RACE_CHECK = (
    "strict" if _RACE_ENV == "strict" else _RACE_ENV in ("1", "true", "yes")
)


def _backend_shard_params(process_counts=(2, 4)):
    """(backend, n_shards) matrix: thread everywhere, process bounded."""
    params = []
    for backend in BACKENDS:
        for n in SHARD_COUNTS:
            if backend == "process" and n not in process_counts:
                continue
            params.append(pytest.param(backend, n, id=f"{backend}-{n}"))
    return params


def _sharded_factory(n_shards, backend):
    return lambda db: ShardedEngine(
        db, shards=n_shards, backend=backend, race_check=RACE_CHECK
    )


def _phase_totals(report):
    """Zero-filtered per-phase counts (stale zero buckets dropped)."""
    return {
        name: counts.as_dict()
        for name, counts in report.phase_counts.items()
        if counts.total or counts.index_maintenance
    }


def _run_devices(engine_factory, build_view, rounds=1, mixed=False):
    db = build_devices_database(DEV_CONFIG)
    engine = engine_factory(db)
    try:
        view = engine.define_view("V", build_view(db, DEV_CONFIG))
        out = []
        for r in range(rounds):
            if mixed:
                batch = mixed_modification_batch(
                    db, DEV_CONFIG, updates=8, inserts=5, deletes=3, round_seed=r
                )
                log_batch(engine, batch)
            else:
                apply_price_updates(engine, db, DEV_CONFIG, round_seed=r)
            report = engine.maintain()["V"]
            out.append((sorted(view.table.rows_uncounted()), report))
        oracle = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == oracle
        return out
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


# ----------------------------------------------------------------------
# equivalence: devices
# ----------------------------------------------------------------------
@pytest.mark.parametrize(("backend", "n_shards"), _backend_shard_params())
@pytest.mark.parametrize("mixed", [False, True], ids=["updates", "mixed"])
def test_devices_flat_view_equivalence(backend, n_shards, mixed):
    base = _run_devices(IdIvmEngine, build_flat_view, rounds=3, mixed=mixed)
    shard = _run_devices(
        _sharded_factory(n_shards, backend),
        build_flat_view,
        rounds=3,
        mixed=mixed,
    )
    for (rows_b, rep_b), (rows_s, rep_s) in zip(base, shard):
        assert rows_s == rows_b
        assert _phase_totals(rep_s) == _phase_totals(rep_b)
        assert rep_s.total_cost == rep_b.total_cost
        assert rep_s.backend == backend


@pytest.mark.parametrize(("backend", "n_shards"), _backend_shard_params())
def test_devices_aggregate_view_equivalence(backend, n_shards):
    base = _run_devices(IdIvmEngine, build_aggregate_view, rounds=2)
    shard = _run_devices(
        _sharded_factory(n_shards, backend),
        build_aggregate_view,
        rounds=2,
    )
    for (rows_b, rep_b), (rows_s, rep_s) in zip(base, shard):
        assert rows_s == rows_b
        assert _phase_totals(rep_s) == _phase_totals(rep_b)


def test_devices_flat_view_routes_parallel():
    [(_, report)] = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_flat_view
    )
    assert report.parallel
    assert report.anchor == "parts"
    assert len(report.shard_reports) == 4
    assert sum(r.total_cost for r in report.shard_reports) == report.total_cost
    assert report.critical_path() == max(
        r.total_cost for r in report.shard_reports
    )


def test_devices_aggregate_view_broadcasts():
    """γ(did) drops the anchor (pid): per-group RMWs are not shard-local."""
    [(_, report)] = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_aggregate_view
    )
    assert not report.parallel
    assert "group keys" in report.broadcast_reason
    assert report.shard_reports == []


def test_single_shard_and_empty_round_broadcast():
    db = build_devices_database(DEV_CONFIG)
    engine = ShardedEngine(db, shards=1)
    engine.define_view("V", build_flat_view(db, DEV_CONFIG))
    report = engine.maintain()["V"]  # nothing logged
    assert not report.parallel
    assert report.broadcast_reason == "single shard requested"
    assert report.total_cost == 0

    db = build_devices_database(DEV_CONFIG)
    engine = ShardedEngine(db, shards=4)
    engine.define_view("V", build_flat_view(db, DEV_CONFIG))
    report = engine.maintain()["V"]
    assert report.broadcast_reason == "empty modification batch"


# ----------------------------------------------------------------------
# equivalence: BSMA
# ----------------------------------------------------------------------
#: Queries whose user-update rounds the router proves parallel (flat
#: joins anchored on users); the aggregates broadcast.
BSMA_PARALLEL = {"Q7", "Q11", "Q15", "Q18"}


@pytest.mark.parametrize(
    ("backend", "n_shards"), _backend_shard_params(process_counts=(4,))
)
@pytest.mark.parametrize("qname", sorted(BSMA_QUERIES))
def test_bsma_equivalence(qname, backend, n_shards):
    build = BSMA_QUERIES[qname]
    results = {}
    for label, factory in (
        ("base", IdIvmEngine),
        ("shard", _sharded_factory(n_shards, backend)),
    ):
        db = build_bsma_database(BSMA_CONFIG)
        engine = factory(db)
        try:
            view = engine.define_view("V", build(db, BSMA_CONFIG))
            log_user_updates(engine, db, BSMA_CONFIG, 60)
            report = engine.maintain()["V"]
            results[label] = (sorted(view.table.rows_uncounted()), report)
        finally:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    rows_b, rep_b = results["base"]
    rows_s, rep_s = results["shard"]
    assert rows_s == rows_b
    assert _phase_totals(rep_s) == _phase_totals(rep_b)
    if qname in BSMA_PARALLEL and n_shards > 1:
        assert rep_s.parallel and rep_s.anchor == "users"
    else:
        assert not rep_s.parallel


# ----------------------------------------------------------------------
# ShardRoutingCounters
# ----------------------------------------------------------------------
def test_routing_counters_delegate_and_activate():
    base = CounterSet()
    router = ShardRoutingCounters(base)
    router.count_tuple_read(3)
    assert base.total.tuple_reads == 3
    shard = CounterSet()
    with router.activate(shard):
        with router.phase("view_update"):
            router.count_tuple_write(2)
    assert shard.total.tuple_writes == 2
    assert shard.phases["view_update"].tuple_writes == 2
    assert base.total.tuple_writes == 0
    # outside the block, counts go to base again
    router.count_index_lookup()
    assert base.total.index_lookups == 1


def test_routing_counters_install_is_idempotent():
    db = Database()
    db.create_table("t", ("a", "b"), ("a",))
    router = ShardRoutingCounters.install(db)
    assert ShardRoutingCounters.install(db) is router
    assert db.counters is router
    assert db.table("t").counters is router
    db.table("t").insert((1, 2))
    assert router.base.total.tuple_writes == 1


def test_routing_counters_fold():
    base, shard = CounterSet(), CounterSet()
    with base.phase("p"):
        base.count_tuple_read()
    with shard.phase("p"):
        shard.count_tuple_read(4)
    with shard.phase("q"):
        shard.count_tuple_write()
    ShardRoutingCounters.fold(base, shard)
    assert base.phases["p"].tuple_reads == 5
    assert base.phases["q"].tuple_writes == 1
    assert base.total.total == 6


def test_routing_counters_reset_routes_to_target():
    base = CounterSet()
    router = ShardRoutingCounters(base)
    router.count_tuple_read()
    shard = CounterSet()
    shard.count_tuple_write()
    with router.activate(shard):
        router.reset()
    assert shard.total.total == 0
    assert base.total.tuple_reads == 1  # base untouched


# ----------------------------------------------------------------------
# sharded engine counters stay truthful
# ----------------------------------------------------------------------
def test_parallel_round_folds_into_database_totals():
    db = build_devices_database(DEV_CONFIG)
    engine = ShardedEngine(db, shards=4)
    engine.define_view("V", build_flat_view(db, DEV_CONFIG))
    apply_price_updates(engine, db, DEV_CONFIG)
    before = engine._router.base.total.total
    report = engine.maintain()["V"]
    assert report.parallel
    after = engine._router.base.total.total
    assert after - before >= report.total_cost  # script work folded back


# ----------------------------------------------------------------------
# partitioned storage layer
# ----------------------------------------------------------------------
def test_shard_of_is_stable_and_in_range():
    assert shard_of(("P1",), 1) == 0
    for n in (2, 4, 8):
        seen = {shard_of((f"P{i}",), n) for i in range(200)}
        assert seen <= set(range(n))
        assert len(seen) > 1  # actually spreads
    # deterministic: same value, same shard
    assert shard_of(("P17",), 4) == shard_of(("P17",), 4)


def test_partitioned_table_routes_key_ops():
    table = PartitionedTable(TableSchema("t", ("k", "v"), ("k",)), 4)
    rows = [(f"K{i}", i) for i in range(40)]
    table.load(rows)
    assert len(table) == 40
    assert table.get(("K7",)) == ("K7", 7)
    # a key get costs exactly one lookup + one read, on one shard only
    combined = table.combined_counts()
    assert combined.index_lookups == 1 and combined.tuple_reads == 1
    busy = [c.total for c in table.shard_counts()]
    assert sorted(busy, reverse=True)[1] == 0  # all cost on one shard
    assert set(table.rows_uncounted()) == set(rows)


def test_partitioned_table_broadcast_lookup_pays_per_shard():
    table = PartitionedTable(TableSchema("t", ("k", "v"), ("k",)), 4)
    table.load([(f"K{i}", i % 3) for i in range(30)])
    table.create_index(("v",))
    table.reset_counters()
    hits = table.lookup(("v",), (1,))
    assert {h[1] for h in hits} == {1}
    # non-key lookup probes every shard's local index
    assert table.combined_counts().index_lookups == 4


def test_partition_database_preserves_contents_and_counts():
    db = build_devices_database(DEV_CONFIG)
    part = partition_database(db, 4)
    assert set(part.table_names()) == set(db.table_names())
    for name in db.table_names():
        assert part.table(name).as_set() == db.table(name).as_set()
    # routed single-key workload: combined counts match an unpartitioned
    # table doing the same ops
    flat = db.table("parts")
    flat.counters.reset()
    sharded = part.table("parts")
    for pid, _ in list(flat.rows_uncounted())[:10]:
        flat.get((pid,))
        sharded.get((pid,))
    assert part.combined_counts().total == flat.counters.total.total
    assert part.critical_path() <= part.combined_counts().total


def test_partitioned_database_rejects_bad_shard_count():
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        PartitionedDatabase(0)
    with pytest.raises(SchemaError):
        ShardedEngine(Database(), shards=0)


# ----------------------------------------------------------------------
# telemetry: per-shard histograms reconcile exactly with the counters
# ----------------------------------------------------------------------
def test_parallel_round_shard_cost_hist_reconciles_exactly():
    [(_, report)] = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_flat_view
    )
    assert report.parallel
    hist = report.shard_cost_hist
    assert hist is not None
    assert hist.count == len(report.shard_reports)
    # per-shard costs are complete integer counters: the merged
    # histogram's sum equals the round total with NO tolerance.
    assert hist.total == report.total_cost
    assert hist.total == sum(r.total_cost for r in report.shard_reports)
    assert hist.max == report.critical_path()


def test_broadcast_round_has_no_shard_cost_hist():
    [(_, report)] = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_aggregate_view
    )
    assert not report.parallel
    assert report.shard_cost_hist is None


def test_worker_thread_histograms_merge_to_shard_totals(_scoped_metrics):
    """``shard.cost`` is observed from worker threads (one per shard);
    the merged ConcurrentLogHistogram must equal the manual fold of its
    per-thread shards and reconcile exactly with the round reports."""
    from repro.obs.hist import LogHistogram

    results = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_flat_view, rounds=3
    )
    parallel_reports = [rep for _, rep in results if rep.parallel]
    assert parallel_reports  # the flat view routes parallel every round

    conc = _scoped_metrics.loghist("shard.cost")
    merged = conc.merged()
    manual = LogHistogram.merged(conc.shards())
    assert merged.count == manual.count
    assert merged.buckets == manual.buckets
    assert merged.total == manual.total
    assert merged.zero_count == manual.zero_count

    assert merged.total == sum(r.shard_cost_hist.total for r in parallel_reports)
    assert merged.count == sum(r.shard_cost_hist.count for r in parallel_reports)
    assert merged.total == sum(r.total_cost for r in parallel_reports)


def test_parallel_round_shard_wall_hist_covers_every_worker():
    [(_, report)] = _run_devices(
        lambda db: ShardedEngine(db, shards=4), build_flat_view
    )
    assert report.parallel
    hist = report.shard_wall_hist
    assert hist is not None
    assert hist.count == len(report.shard_reports) == 4
    assert hist.total >= 0.0


# ----------------------------------------------------------------------
# process backend: worker pool lifecycle
# ----------------------------------------------------------------------
pytestmark_process = pytest.mark.skipif(
    "process" not in BACKENDS, reason="process backend excluded by REPRO_BACKEND"
)


@pytestmark_process
def test_process_backend_report_and_wall_clocks():
    results = _run_devices(
        _sharded_factory(4, "process"), build_flat_view, rounds=2
    )
    for _, report in results:
        assert report.parallel
        assert report.backend == "process"
        # one worker-side perf_counter duration per shard; durations are
        # the only wall-clock quantity allowed across the process
        # boundary (raw monotonic timestamps are process-local).
        assert report.shard_wall_hist.count == 4
        assert report.shard_cost_hist.total == report.total_cost


@pytestmark_process
def test_process_pool_is_lazy_reused_and_closed():
    db = build_devices_database(DEV_CONFIG)
    engine = ShardedEngine(db, shards=2, backend="process")
    try:
        engine.define_view("V", build_flat_view(db, DEV_CONFIG))
        assert engine._pool is None  # no parallel round yet -> no workers
        apply_price_updates(engine, db, DEV_CONFIG, round_seed=0)
        assert engine.maintain()["V"].parallel
        pool = engine._pool
        assert pool is not None and not pool.closed
        apply_price_updates(engine, db, DEV_CONFIG, round_seed=1)
        assert engine.maintain()["V"].parallel
        assert engine._pool is pool  # long-lived workers, not per-round
    finally:
        engine.close()
    assert engine._pool is None
    engine.close()  # idempotent


@pytestmark_process
def test_process_backend_define_view_invalidates_pool():
    db = build_devices_database(DEV_CONFIG)
    with ShardedEngine(db, shards=2, backend="process") as engine:
        engine.define_view("V", build_flat_view(db, DEV_CONFIG))
        apply_price_updates(engine, db, DEV_CONFIG, round_seed=0)
        engine.maintain()
        assert engine._pool is not None
        engine.define_view("W", build_flat_view(db, DEV_CONFIG))
        assert engine._pool is None  # blueprint changed; workers respawn
        apply_price_updates(engine, db, DEV_CONFIG, round_seed=1)
        reports = engine.maintain()
        assert reports["V"].parallel and reports["W"].parallel
    assert engine._pool is None


@pytestmark_process
def test_process_backend_folds_into_database_totals():
    db = build_devices_database(DEV_CONFIG)
    with ShardedEngine(db, shards=4, backend="process") as engine:
        engine.define_view("V", build_flat_view(db, DEV_CONFIG))
        apply_price_updates(engine, db, DEV_CONFIG)
        before = engine._router.base.total.total
        report = engine.maintain()["V"]
        assert report.parallel
        after = engine._router.base.total.total
        assert after - before >= report.total_cost


def test_sharded_engine_rejects_unknown_backend():
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        ShardedEngine(Database(), shards=2, backend="fiber")
