"""Replay the shrunken-reproducer corpus in ``tests/regressions/``.

Every file is a minimal case the fuzzer (or a manual bisection) once
found a real bug with; each must stay clean across every maintenance
strategy forever.  ``repro crosscheck`` appends new files here when it
finds and shrinks a divergence — nothing else should edit them.
"""

from __future__ import annotations

import pytest

from repro.crosscheck import corpus_files, load_corpus_case, run_case

FILES = corpus_files()


def test_corpus_is_not_empty():
    """The fixed bugs of the initial fuzzing sweep left reproducers."""
    assert len(FILES) >= 5


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_regression_case_stays_fixed(path):
    case = load_corpus_case(path)
    result = run_case(case)
    assert result.ok, "\n".join(str(d) for d in result.divergences)
