"""Replay the shrunken-reproducer corpus in ``tests/regressions/``.

Every file is a minimal case the fuzzer (or a manual bisection) once
found a real bug with; each must stay clean across every maintenance
strategy forever.  ``repro crosscheck`` appends new files here when it
finds and shrinks a divergence — nothing else should edit them.
"""

from __future__ import annotations

import pytest

from repro.crosscheck import corpus_files, load_corpus_case, run_case

FILES = corpus_files()


def test_corpus_is_not_empty():
    """The fixed bugs of the initial fuzzing sweep left reproducers."""
    assert len(FILES) >= 5


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_regression_case_stays_fixed(path):
    case = load_corpus_case(path)
    result = run_case(case)
    assert result.ok, "\n".join(str(d) for d in result.divergences)


# ----------------------------------------------------------------------
# reproducers the corpus JSON vocabulary cannot express (theta joins)
# ----------------------------------------------------------------------
def _theta_db():
    from repro.storage import Database

    db = Database()
    db.create_table("R", ("rid", "x"), ("rid",))
    db.create_table("T", ("tid", "w"), ("tid",))
    db.table("R").load([(1, 0)])
    db.table("T").load([(2, 2)])
    return db


def _theta_engines():
    from repro.baselines import TupleIvmEngine
    from repro.core import IdIvmEngine

    return (IdIvmEngine, TupleIvmEngine)


def test_theta_join_joint_update_transition():
    """R ⋈_{x<w} T with both condition columns updated in one round.

    Found by hypothesis: each unilateral change kept φ true (x:0→1 vs
    w_pre=2, and w:2→1 vs x_pre=0), so neither side's delete branch
    fired — yet φ(x_post, w_post) = 1<1 is false.  The delete branch
    must check φ against the partner's re-probed POST values.
    """
    from repro.algebra import Join, evaluate_plan, scan
    from repro.expr import col

    for engine_cls in _theta_engines():
        db = _theta_db()
        engine = engine_cls(db)
        view = engine.define_view(
            "V", Join(scan(db, "R"), scan(db, "T"), col("x").lt(col("w")))
        )
        engine.log.update("R", (1,), {"x": 1})
        engine.log.update("T", (2,), {"w": 1})
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected, engine_cls.__name__


def test_theta_join_update_with_partner_delete():
    """A condition-column update whose partner row is deleted in the same
    round: the re-probed POST partner vanishes, and the partner's own
    pass-through delete must remove the combo exactly once."""
    from repro.algebra import Join, evaluate_plan, scan
    from repro.expr import col

    for engine_cls in _theta_engines():
        db = _theta_db()
        engine = engine_cls(db)
        view = engine.define_view(
            "V", Join(scan(db, "R"), scan(db, "T"), col("x").lt(col("w")))
        )
        engine.log.update("R", (1,), {"x": 1})
        engine.log.delete("T", (2,))
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected, engine_cls.__name__


def test_theta_join_partner_change_keeps_combo_alive():
    """The opposite transition: each unilateral change would kill φ, the
    joint change keeps it true (x:0→5 vs w_pre=2 false, w:2→9 vs
    x_pre=0 true; φ(5, 9) holds) — the combo must survive with both
    post values."""
    from repro.algebra import Join, evaluate_plan, scan
    from repro.expr import col

    for engine_cls in _theta_engines():
        db = _theta_db()
        engine = engine_cls(db)
        view = engine.define_view(
            "V", Join(scan(db, "R"), scan(db, "T"), col("x").lt(col("w")))
        )
        engine.log.update("R", (1,), {"x": 5})
        engine.log.update("T", (2,), {"w": 9})
        engine.maintain()
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected
        assert view.table.as_set() == frozenset({(1, 5, 2, 9)})
