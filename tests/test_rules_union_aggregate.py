"""Rule-level tests for union-all (Table 5) and the blocking aggregate
steps (Tables 7, 9, 11, 12)."""

import pytest

from repro.algebra import UnionAll, group_by, scan, where
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import minimize_ir
from repro.core.rules.aggregate import (
    AssociativeAggregateStep,
    GeneralAggregateStep,
    OpCacheSpec,
)
from repro.core.rules.union import propagate_union
from repro.algebra.evaluate import evaluate_plan, materialize
from repro.expr import col, lit
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("m", ("k", "g", "v"), ("k",))
    database.table("m").load([(1, "a", 5), (2, "a", 7), (3, "b", 2)])
    return database


class TestUnionRule:
    @pytest.fixture
    def plan(self, db):
        low = where(scan(db, "m"), col("v").le(lit(4)))
        high = where(scan(db, "m"), col("v").gt(lit(4)))
        return annotate_plan(UnionAll(low, high))

    def test_branch_tag_appended_as_id(self, db, plan):
        schema = DiffSchema(
            DELETE, f"n{plan.children[1].node_id}", ("k",), pre_attrs=("g", "v")
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, "a", 5)])
        [(out_schema, ir)] = propagate_union(
            plan, DiffSource("in", schema), schema, 1
        )
        assert out_schema.id_attrs == ("k", "b")
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.rows[0][:2] == (1, 1)  # right branch -> b = 1

    def test_left_branch_tag_zero(self, db, plan):
        schema = DiffSchema(
            INSERT, f"n{plan.children[0].node_id}", ("k",), post_attrs=("g", "v")
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(9, "c", 1)])
        [(out_schema, ir)] = propagate_union(
            plan, DiffSource("in", schema), schema, 0
        )
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.rows[0][1] == 0


def _setup_aggregate(db, aggs):
    plan = annotate_plan(group_by(scan(db, "m"), ("g",), aggs))
    out_table = materialize(plan, db, "OUT")
    spec = OpCacheSpec(plan, "opc")
    opcache = spec.build(evaluate_plan(plan.child, db), db.counters)
    return plan, out_table, opcache


def _run_step(db_pre, db_post, plan, out_table, opcache, diffs, associative=True):
    ctx = IrContext(db_pre, db_post)
    ctx.caches[plan.node_id] = out_table
    ctx.operator_caches[plan.node_id] = opcache
    inputs = []
    for i, diff in enumerate(diffs):
        name = f"in{i}"
        ctx.diffs[name] = diff
        inputs.append(("diff", name))
    step_cls = AssociativeAggregateStep if associative else GeneralAggregateStep
    if associative:
        step = step_cls(plan, inputs, "opc", "emit", "view_update")
    else:
        step = step_cls(plan, inputs, "emit", "view_update")
    step.run(ctx)
    return ctx


class TestAssociativeStep:
    def test_update_shifts_sum(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((1,), {"v": 8})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(1, "a", 5, 8)])])
        assert out.as_set() == {("a", 15), ("b", 2)}

    def test_insert_creates_group(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            INSERT, f"n{plan.child.node_id}", ("k",), post_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").insert_uncounted((9, "c", 4))
        ctx = _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(9, "c", 4)])])
        assert ("c", 4) in out.as_set()
        assert len(ctx.diffs["emit_ins"]) == 1

    def test_delete_empties_group(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            DELETE, f"n{plan.child.node_id}", ("k",), pre_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").delete_uncounted((3,))
        ctx = _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(3, "b", 2)])])
        assert out.as_set() == {("a", 12)}
        assert len(ctx.diffs["emit_del"]) == 1

    def test_avg_uses_operator_cache(self, db):
        plan, out, opc = _setup_aggregate(db, [("avg", col("v"), "mean")])
        assert "__sum_mean" in opc.schema.columns
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((2,), {"v": 9})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(2, "a", 7, 9)])])
        assert out.as_set() == {("a", 7.0), ("b", 2.0)}

    def test_sum_to_null_when_all_values_null(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((3,), {"v": None})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(3, "b", 2, None)])])
        assert ("b", None) in out.as_set()

    def test_zero_delta_costs_nothing(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db.counters.reset()
        before = db.counters.total.total
        _run_step(db, db, plan, out, opc, [Diff(schema, [(1, "a", 5, 5)])])
        # The probe of Input_pre costs, but no output writes happen.
        assert out.as_set() == {("a", 12), ("b", 2)}
        assert db.counters.total.tuple_writes == before

    def test_blocking_combines_branches(self, db):
        """Two branches' deltas on the same group combine before the
        single output write (Example 4.4's blocking behaviour)."""
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        upd = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((1,), {"v": 6})
        db.table("m").update_uncounted((2,), {"v": 8})
        _run_step(
            db_pre, db, plan, out, opc,
            [Diff(upd, [(1, "a", 5, 6)]), Diff(upd, [(2, "a", 7, 8)])],
        )
        assert ("a", 14) in out.as_set()


class TestGeneralStep:
    def test_minmax_recompute(self, db):
        plan, out, opc = _setup_aggregate(
            db, [("min", col("v"), "lo"), ("max", col("v"), "hi")]
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((2,), {"v": 1})
        _run_step(
            db_pre, db, plan, out, opc,
            [Diff(schema, [(2, "a", 7, 1)])], associative=False,
        )
        assert out.as_set() == {("a", 1, 5), ("b", 2, 2)}

    def test_group_deletion_via_recompute(self, db):
        plan, out, opc = _setup_aggregate(db, [("max", col("v"), "hi")])
        schema = DiffSchema(
            DELETE, f"n{plan.child.node_id}", ("k",), pre_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").delete_uncounted((3,))
        ctx = _run_step(
            db_pre, db, plan, out, opc,
            [Diff(schema, [(3, "b", 2)])], associative=False,
        )
        assert out.as_set() == {("a", 7)}
        assert len(ctx.diffs["emit_del"]) == 1


def _minmax_engines():
    """Every maintenance strategy with a min/max rescan path."""
    from repro.baselines import TupleIvmEngine
    from repro.core import IdIvmEngine

    return [
        pytest.param(lambda db: IdIvmEngine(db, optimize=False), id="eager"),
        pytest.param(lambda db: IdIvmEngine(db, optimize=True), id="minimized"),
        pytest.param(TupleIvmEngine, id="tuple"),
    ]


@pytest.mark.parametrize("make_engine", _minmax_engines())
class TestMinMaxDeleteRescan:
    """DELETE of the cached extremum must fire the Table 7 rescan —
    including with duplicate extrema, NULL-only groups and NULL/mixed
    group keys (which Python's ``sorted`` cannot order)."""

    def _engine(self, make_engine, rows):
        db = Database()
        db.create_table("m", ("k", "g", "v"), ("k",))
        db.table("m").load(rows)
        engine = make_engine(db)
        plan = group_by(
            scan(db, "m"), ("g",),
            [("min", col("v"), "lo"), ("max", col("v"), "hi")],
        )
        view = engine.define_view("V", plan)
        return engine, view

    def test_delete_unique_extremum_rescans_and_is_costed(self, make_engine):
        engine, view = self._engine(
            make_engine, [(1, "a", 5), (2, "a", 7), (3, "b", 2)]
        )
        engine.log.delete("m", (2,))
        report = engine.maintain()["V"]
        assert view.table.as_set() == {("a", 5, 5), ("b", 2, 2)}
        # The rescan touched the surviving group members and was counted.
        total = report.phase_counts["__total__"]
        assert total.tuple_reads > 0
        assert total.tuple_writes > 0
        assert report.total_cost > 0

    def test_delete_duplicate_extremum_keeps_value(self, make_engine):
        engine, view = self._engine(
            make_engine, [(1, "a", 7), (2, "a", 7), (3, "a", 1)]
        )
        engine.log.delete("m", (2,))
        engine.maintain()
        assert view.table.as_set() == {("a", 1, 7)}

    def test_delete_last_extremum_drops_to_next(self, make_engine):
        engine, view = self._engine(
            make_engine, [(1, "a", 7), (2, "a", 7), (3, "a", 1)]
        )
        engine.log.delete("m", (1,))
        engine.log.delete("m", (2,))
        engine.maintain()
        assert view.table.as_set() == {("a", 1, 1)}

    def test_null_only_group_survives_extremum_delete(self, make_engine):
        engine, view = self._engine(
            make_engine, [(1, "a", None), (2, "a", None), (3, "b", 4)]
        )
        engine.log.delete("m", (1,))
        engine.maintain()
        # The group still has a member; min/max over all-NULL is NULL.
        assert view.table.as_set() == {("a", None, None), ("b", 4, 4)}
        engine.log.delete("m", (2,))
        engine.maintain()
        assert view.table.as_set() == {("b", 4, 4)}

    def test_null_group_key_delete_does_not_crash_sort(self, make_engine):
        # Pre-fix: sorted() over {("a",), (None,)} raised TypeError.
        engine, view = self._engine(
            make_engine, [(1, None, 5), (2, None, 7), (3, "a", 2)]
        )
        engine.log.delete("m", (2,))
        engine.maintain()
        assert view.table.as_set() == {(None, 5, 5), ("a", 2, 2)}

    def test_mixed_type_group_keys_delete(self, make_engine):
        # Pre-fix: sorted() over {(1,), ("a",)} raised TypeError.
        engine, view = self._engine(
            make_engine, [(1, 1, 5), (2, 1, 9), (3, "a", 2)]
        )
        engine.log.delete("m", (2,))
        engine.maintain()
        assert view.table.as_set() == {(1, 5, 5), ("a", 2, 2)}
