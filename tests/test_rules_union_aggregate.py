"""Rule-level tests for union-all (Table 5) and the blocking aggregate
steps (Tables 7, 9, 11, 12)."""

import pytest

from repro.algebra import UnionAll, group_by, scan, where
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import minimize_ir
from repro.core.rules.aggregate import (
    AssociativeAggregateStep,
    GeneralAggregateStep,
    OpCacheSpec,
)
from repro.core.rules.union import propagate_union
from repro.algebra.evaluate import evaluate_plan, materialize
from repro.expr import col, lit
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("m", ("k", "g", "v"), ("k",))
    database.table("m").load([(1, "a", 5), (2, "a", 7), (3, "b", 2)])
    return database


class TestUnionRule:
    @pytest.fixture
    def plan(self, db):
        low = where(scan(db, "m"), col("v").le(lit(4)))
        high = where(scan(db, "m"), col("v").gt(lit(4)))
        return annotate_plan(UnionAll(low, high))

    def test_branch_tag_appended_as_id(self, db, plan):
        schema = DiffSchema(
            DELETE, f"n{plan.children[1].node_id}", ("k",), pre_attrs=("g", "v")
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, "a", 5)])
        [(out_schema, ir)] = propagate_union(
            plan, DiffSource("in", schema), schema, 1
        )
        assert out_schema.id_attrs == ("k", "b")
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.rows[0][:2] == (1, 1)  # right branch -> b = 1

    def test_left_branch_tag_zero(self, db, plan):
        schema = DiffSchema(
            INSERT, f"n{plan.children[0].node_id}", ("k",), post_attrs=("g", "v")
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(9, "c", 1)])
        [(out_schema, ir)] = propagate_union(
            plan, DiffSource("in", schema), schema, 0
        )
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.rows[0][1] == 0


def _setup_aggregate(db, aggs):
    plan = annotate_plan(group_by(scan(db, "m"), ("g",), aggs))
    out_table = materialize(plan, db, "OUT")
    spec = OpCacheSpec(plan, "opc")
    opcache = spec.build(evaluate_plan(plan.child, db), db.counters)
    return plan, out_table, opcache


def _run_step(db_pre, db_post, plan, out_table, opcache, diffs, associative=True):
    ctx = IrContext(db_pre, db_post)
    ctx.caches[plan.node_id] = out_table
    ctx.operator_caches[plan.node_id] = opcache
    inputs = []
    for i, diff in enumerate(diffs):
        name = f"in{i}"
        ctx.diffs[name] = diff
        inputs.append(("diff", name))
    step_cls = AssociativeAggregateStep if associative else GeneralAggregateStep
    if associative:
        step = step_cls(plan, inputs, "opc", "emit", "view_update")
    else:
        step = step_cls(plan, inputs, "emit", "view_update")
    step.run(ctx)
    return ctx


class TestAssociativeStep:
    def test_update_shifts_sum(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((1,), {"v": 8})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(1, "a", 5, 8)])])
        assert out.as_set() == {("a", 15), ("b", 2)}

    def test_insert_creates_group(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            INSERT, f"n{plan.child.node_id}", ("k",), post_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").insert_uncounted((9, "c", 4))
        ctx = _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(9, "c", 4)])])
        assert ("c", 4) in out.as_set()
        assert len(ctx.diffs["emit_ins"]) == 1

    def test_delete_empties_group(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            DELETE, f"n{plan.child.node_id}", ("k",), pre_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").delete_uncounted((3,))
        ctx = _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(3, "b", 2)])])
        assert out.as_set() == {("a", 12)}
        assert len(ctx.diffs["emit_del"]) == 1

    def test_avg_uses_operator_cache(self, db):
        plan, out, opc = _setup_aggregate(db, [("avg", col("v"), "mean")])
        assert "__sum_mean" in opc.schema.columns
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((2,), {"v": 9})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(2, "a", 7, 9)])])
        assert out.as_set() == {("a", 7.0), ("b", 2.0)}

    def test_sum_to_null_when_all_values_null(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((3,), {"v": None})
        _run_step(db_pre, db, plan, out, opc, [Diff(schema, [(3, "b", 2, None)])])
        assert ("b", None) in out.as_set()

    def test_zero_delta_costs_nothing(self, db):
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db.counters.reset()
        before = db.counters.total.total
        _run_step(db, db, plan, out, opc, [Diff(schema, [(1, "a", 5, 5)])])
        # The probe of Input_pre costs, but no output writes happen.
        assert out.as_set() == {("a", 12), ("b", 2)}
        assert db.counters.total.tuple_writes == before

    def test_blocking_combines_branches(self, db):
        """Two branches' deltas on the same group combine before the
        single output write (Example 4.4's blocking behaviour)."""
        plan, out, opc = _setup_aggregate(db, [("sum", col("v"), "s")])
        upd = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((1,), {"v": 6})
        db.table("m").update_uncounted((2,), {"v": 8})
        _run_step(
            db_pre, db, plan, out, opc,
            [Diff(upd, [(1, "a", 5, 6)]), Diff(upd, [(2, "a", 7, 8)])],
        )
        assert ("a", 14) in out.as_set()


class TestGeneralStep:
    def test_minmax_recompute(self, db):
        plan, out, opc = _setup_aggregate(
            db, [("min", col("v"), "lo"), ("max", col("v"), "hi")]
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("g", "v"), post_attrs=("v",),
        )
        db_pre = db.copy()
        db.table("m").update_uncounted((2,), {"v": 1})
        _run_step(
            db_pre, db, plan, out, opc,
            [Diff(schema, [(2, "a", 7, 1)])], associative=False,
        )
        assert out.as_set() == {("a", 1, 5), ("b", 2, 2)}

    def test_group_deletion_via_recompute(self, db):
        plan, out, opc = _setup_aggregate(db, [("max", col("v"), "hi")])
        schema = DiffSchema(
            DELETE, f"n{plan.child.node_id}", ("k",), pre_attrs=("g", "v")
        )
        db_pre = db.copy()
        db.table("m").delete_uncounted((3,))
        ctx = _run_step(
            db_pre, db, plan, out, opc,
            [Diff(schema, [(3, "b", 2)])], associative=False,
        )
        assert out.as_set() == {("a", 7)}
        assert len(ctx.diffs["emit_del"]) == 1
