"""Property-based tests for the expression layer.

The evaluator must agree with plain Python semantics on random
expressions, and the static analyses (column extraction, renaming,
conjunct splitting) must commute with evaluation.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.expr import (
    And,
    Not,
    Or,
    all_of,
    col,
    columns_of,
    conjuncts_of,
    evaluate,
    lit,
    matches,
    rename_columns,
)

COLUMNS = ("a", "b", "c")
POSITIONS = {name: i for i, name in enumerate(COLUMNS)}

values = st.integers(min_value=-50, max_value=50)
rows = st.tuples(values, values, values)


@st.composite
def arith_exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return col(draw(st.sampled_from(COLUMNS)))
        return lit(draw(values))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_exprs(depth=depth + 1))
    right = draw(arith_exprs(depth=depth + 1))
    from repro.expr import Arith

    return Arith(op, left, right)


@st.composite
def bool_exprs(draw, depth=0):
    if depth > 2 or draw(st.booleans()):
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        from repro.expr import Cmp

        return Cmp(op, draw(arith_exprs()), draw(arith_exprs()))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(bool_exprs(depth=depth + 1)))
    parts = draw(st.lists(bool_exprs(depth=depth + 1), min_size=2, max_size=3))
    return And(parts) if kind == "and" else Or(parts)


def python_eval(expr, row):
    """Reference implementation over non-NULL integer rows."""
    from repro.expr import And as AndN, Arith, Cmp, Col, Lit, Not as NotN, Or as OrN

    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Col):
        return row[POSITIONS[expr.name]]
    if isinstance(expr, Arith):
        left, right = python_eval(expr.left, row), python_eval(expr.right, row)
        return {"+": left + right, "-": left - right, "*": left * right}[expr.op]
    if isinstance(expr, Cmp):
        left, right = python_eval(expr.left, row), python_eval(expr.right, row)
        return {
            "=": left == right, "<>": left != right, "<": left < right,
            "<=": left <= right, ">": left > right, ">=": left >= right,
        }[expr.op]
    if isinstance(expr, AndN):
        return all(python_eval(i, row) for i in expr.items)
    if isinstance(expr, OrN):
        return any(python_eval(i, row) for i in expr.items)
    if isinstance(expr, NotN):
        return not python_eval(expr.item, row)
    raise TypeError(expr)


@given(expr=arith_exprs(), row=rows)
def test_arithmetic_matches_python(expr, row):
    assert evaluate(expr, POSITIONS, row) == python_eval(expr, row)


@given(expr=bool_exprs(), row=rows)
def test_booleans_match_python(expr, row):
    assert bool(evaluate(expr, POSITIONS, row)) == bool(python_eval(expr, row))


@given(expr=bool_exprs(), row=rows)
def test_matches_equals_evaluate_on_total_rows(expr, row):
    """Without NULLs, matches() is just truth of evaluate()."""
    assert matches(expr, POSITIONS, row) == bool(evaluate(expr, POSITIONS, row))


@given(expr=bool_exprs())
def test_columns_of_is_sound(expr):
    """Evaluation never needs a column outside columns_of(expr)."""
    needed = columns_of(expr)
    positions = {name: POSITIONS[name] for name in needed}
    row = (1, 2, 3)
    # Restricting the namespace to the reported columns must not raise.
    evaluate(expr, positions, row)


@given(expr=bool_exprs(), row=rows)
def test_rename_commutes_with_evaluation(expr, row):
    mapping = {"a": "x", "b": "y", "c": "z"}
    renamed = rename_columns(expr, mapping)
    renamed_positions = {mapping[name]: i for name, i in POSITIONS.items()}
    assert evaluate(expr, POSITIONS, row) == evaluate(
        renamed, renamed_positions, row
    )


@given(parts=st.lists(bool_exprs(), min_size=1, max_size=4), row=rows)
def test_conjuncts_partition_conjunction(parts, row):
    conjunction = all_of(*parts)
    pieces = conjuncts_of(conjunction)
    direct = matches(conjunction, POSITIONS, row)
    split = all(matches(p, POSITIONS, row) for p in pieces)
    assert direct == split
