"""Tests for the benchmark harness and reporting helpers."""

from repro.bench import (
    SweepPoint,
    SystemResult,
    format_comparison,
    format_sweep,
    format_table,
    run_system,
    speedup,
)
from repro.baselines import TupleIvmEngine
from repro.core import IdIvmEngine
from repro.storage import Database
from tests.conftest import build_view_v


def _db_factory():
    db = Database()
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    return db


def _mods(engine, db):
    engine.log.update("parts", ("P1",), {"price": 11})


class TestRunSystem:
    def test_collects_costs_and_correctness(self):
        result = run_system(
            "idIVM", _db_factory, IdIvmEngine, build_view_v, _mods
        )
        assert result.correct
        assert result.total_cost == 3
        assert result.phase("view_update") == 3
        assert result.wall_seconds >= 0

    def test_phase_breakdown_sums_to_total(self):
        result = run_system(
            "tuple", _db_factory, TupleIvmEngine, build_view_v, _mods
        )
        assert sum(result.phase_costs.values()) == result.total_cost
        assert result.lookups + result.reads + result.writes == result.total_cost

    def test_speedup(self):
        id_result = run_system("id", _db_factory, IdIvmEngine, build_view_v, _mods)
        tuple_result = run_system(
            "tuple", _db_factory, TupleIvmEngine, build_view_v, _mods
        )
        assert speedup(tuple_result, id_result) > 1.0

    def test_zero_cost_speedup(self):
        a = SystemResult("a", total_cost=10)
        b = SystemResult("b", total_cost=0)
        assert speedup(a, b) == float("inf")
        assert speedup(b, b) == 1.0


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("x", 1), ("longer", 22.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "22.50" in lines[-1]

    def test_format_comparison(self):
        result = SystemResult(
            "idIVM", total_cost=10, phase_costs={"view_update": 10},
            lookups=4, reads=0, writes=6,
        )
        text = format_comparison("title", {"idIVM": result})
        assert "== title ==" in text
        assert "idIVM" in text
        assert "yes" in text

    def test_format_sweep(self):
        point = SweepPoint(
            parameter=5,
            results={
                "idIVM": SystemResult("idIVM", total_cost=10),
                "tuple": SystemResult("tuple", total_cost=40),
            },
        )
        text = format_sweep("s", "f", [point], systems=("idIVM", "tuple"))
        assert "4.00" in text  # the speedup column

    def test_sweep_point_speedup(self):
        point = SweepPoint(
            parameter=1,
            results={
                "idIVM": SystemResult("idIVM", total_cost=5),
                "tuple": SystemResult("tuple", total_cost=50),
            },
        )
        assert point.speedup() == 10.0
