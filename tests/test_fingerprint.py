"""Semantic plan/∆-script fingerprints (repro.analysis.fingerprint).

The contract under test: fingerprints are *semantic* — invariant under
attribute renaming, commutative-operand order and conjunct order — yet
*distinct* under any change of meaning, and the bytes are stable across
processes and ``PYTHONHASHSEED`` values (the same discipline
tests/test_wire.py enforces for the shard wire format).  Exact mode
(``alpha=False``) is the syntactic variant that keys the analysis
cache: it must additionally distinguish renamings.
"""

from __future__ import annotations

import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import UnionAll, equi_join, group_by, rename, scan, where
from repro.analysis import (
    generated_fingerprint,
    plan_fingerprint,
    plan_fingerprints,
    script_fingerprint,
)
from repro.expr import Cmp, col, lit
from repro.expr.ast import And
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        ("k", "a", "b"),
        ("k",),
        types={"k": "int", "a": "int", "b": "int"},
    )
    db.create_table(
        "u", ("j", "c"), ("j",), types={"j": "int", "c": "int"}
    )
    db.table("t").load([(1, 5, 7), (2, 6, 8)])
    db.table("u").load([(1, 9)])
    return db


# ----------------------------------------------------------------------
# invariances (directed)
# ----------------------------------------------------------------------
class TestInvariance:
    def test_rename_invariant_alpha_distinct_exact(self):
        """Identical structure under different attribute names: the
        alpha fingerprints agree, the exact (cache-key) ones differ."""
        db = make_db()
        original = where(
            rename(scan(db, "t"), {}), Cmp(">", col("a"), lit(5))
        )
        renamed = where(
            rename(scan(db, "t"), {"a": "alpha", "b": "beta"}),
            Cmp(">", col("alpha"), lit(5)),
        )
        assert plan_fingerprint(original, db) == plan_fingerprint(renamed, db)
        assert plan_fingerprint(original, db, alpha=False) != plan_fingerprint(
            renamed, db, alpha=False
        )

    def test_join_operand_order_invariant(self):
        db = make_db()
        ab = equi_join(scan(db, "t"), scan(db, "u"), [("k", "j")])
        ba = equi_join(scan(db, "u"), scan(db, "t"), [("j", "k")])
        assert plan_fingerprint(ab, db) == plan_fingerprint(ba, db)

    def test_union_operand_order_invariant(self):
        db = make_db()
        lo = where(scan(db, "t"), Cmp("<", col("a"), lit(6)))
        hi = where(scan(db, "t"), Cmp(">=", col("a"), lit(6)))
        assert plan_fingerprint(UnionAll(lo, hi, "br"), db) == plan_fingerprint(
            UnionAll(hi, lo, "br"), db
        )

    def test_union_of_twin_branches_differs_from_single_branch(self):
        """σ(T) ∪ σ(T) with *identical* branches must not collapse into
        anything resembling one branch — the bag has twice the rows."""
        db = make_db()
        half = where(scan(db, "t"), Cmp("<", col("a"), lit(6)))
        twin = UnionAll(half, where(scan(db, "t"), Cmp("<", col("a"), lit(6))), "br")
        other = UnionAll(half, where(scan(db, "t"), Cmp("<", col("a"), lit(7))), "br")
        assert plan_fingerprint(twin, db) != plan_fingerprint(other, db)

    def test_comparison_flip_invariant(self):
        db = make_db()
        gt = where(scan(db, "t"), Cmp(">", col("a"), lit(5)))
        lt = where(scan(db, "t"), Cmp("<", lit(5), col("a")))
        assert plan_fingerprint(gt, db) == plan_fingerprint(lt, db)

    def test_equality_operand_order_invariant(self):
        db = make_db()
        one = where(scan(db, "t"), Cmp("=", col("a"), col("b")))
        two = where(scan(db, "t"), Cmp("=", col("b"), col("a")))
        assert plan_fingerprint(one, db) == plan_fingerprint(two, db)


# ----------------------------------------------------------------------
# distinctness (directed)
# ----------------------------------------------------------------------
class TestDistinctness:
    def test_constant_change_changes_fingerprint(self):
        db = make_db()
        five = where(scan(db, "t"), Cmp(">", col("a"), lit(5)))
        six = where(scan(db, "t"), Cmp(">", col("a"), lit(6)))
        assert plan_fingerprint(five, db) != plan_fingerprint(six, db)

    def test_operator_change_changes_fingerprint(self):
        db = make_db()
        gt = where(scan(db, "t"), Cmp(">", col("a"), lit(5)))
        ge = where(scan(db, "t"), Cmp(">=", col("a"), lit(5)))
        assert plan_fingerprint(gt, db) != plan_fingerprint(ge, db)

    def test_column_change_changes_fingerprint(self):
        db = make_db()
        on_a = where(scan(db, "t"), Cmp(">", col("a"), lit(5)))
        on_b = where(scan(db, "t"), Cmp(">", col("b"), lit(5)))
        assert plan_fingerprint(on_a, db) != plan_fingerprint(on_b, db)

    def test_aggregate_change_changes_fingerprint(self):
        db = make_db()
        cnt = group_by(scan(db, "t"), ("k",), [("count", None, "x")])
        tot = group_by(scan(db, "t"), ("k",), [("sum", col("a"), "x")])
        assert plan_fingerprint(cnt, db) != plan_fingerprint(tot, db)

    def test_select_is_not_its_child(self):
        db = make_db()
        bare = scan(db, "t")
        assert plan_fingerprint(bare, db) != plan_fingerprint(
            where(bare, Cmp(">", col("a"), lit(5))), db
        )


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
_COLUMNS = ("a", "b")
_OPS = ("<", "<=", ">", ">=", "=", "<>")

conjuncts = st.lists(
    st.tuples(
        st.sampled_from(_COLUMNS),
        st.sampled_from(_OPS),
        st.integers(min_value=-3, max_value=9),
    ),
    min_size=1,
    max_size=5,
    unique=True,
)

fresh_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6
    ).filter(lambda s: s not in ("k", "a", "b")),
    min_size=2,
    max_size=2,
    unique=True,
)


def _predicate(parts):
    return And([Cmp(op, col(c), lit(v)) for c, op, v in parts])


@settings(max_examples=40, deadline=None)
@given(parts=conjuncts, shuffled=st.randoms())
def test_conjunct_order_is_irrelevant(parts, shuffled):
    db = make_db()
    reordered = list(parts)
    shuffled.shuffle(reordered)
    base = where(scan(db, "t"), _predicate(parts))
    permuted = where(scan(db, "t"), _predicate(reordered))
    assert plan_fingerprint(base, db) == plan_fingerprint(permuted, db)


@settings(max_examples=40, deadline=None)
@given(parts=conjuncts, names=fresh_names)
def test_renaming_is_irrelevant_in_alpha_mode(parts, names):
    db = make_db()
    mapping = dict(zip(_COLUMNS, names))
    base = where(rename(scan(db, "t"), {}), _predicate(parts))
    renamed = where(
        rename(scan(db, "t"), mapping),
        And([Cmp(op, col(mapping[c]), lit(v)) for c, op, v in parts]),
    )
    assert plan_fingerprint(base, db) == plan_fingerprint(renamed, db)
    if any(mapping[c] != c for c in _COLUMNS):
        assert plan_fingerprint(base, db, alpha=False) != plan_fingerprint(
            renamed, db, alpha=False
        )


@settings(max_examples=40, deadline=None)
@given(
    parts=st.tuples(
        st.sampled_from(_COLUMNS),
        st.sampled_from(_OPS),
        st.integers(min_value=-3, max_value=9),
    ),
    other=st.tuples(
        st.sampled_from(_COLUMNS),
        st.sampled_from(_OPS),
        st.integers(min_value=-3, max_value=9),
    ),
)
def test_distinct_predicates_distinct_fingerprints(parts, other):
    """Semantic distinctness on single comparisons, modulo the one
    legitimate identification: the canonicalizer's operator flip and
    operand sort (a > 5 ≡ 5 < a, a = b ≡ b = a)."""
    db = make_db()
    if parts == other:
        return
    c1, op1, v1 = parts
    c2, op2, v2 = other
    fp1 = plan_fingerprint(where(scan(db, "t"), Cmp(op1, col(c1), lit(v1))), db)
    fp2 = plan_fingerprint(where(scan(db, "t"), Cmp(op2, col(c2), lit(v2))), db)
    assert fp1 != fp2


# ----------------------------------------------------------------------
# ∆-script fingerprints
# ----------------------------------------------------------------------
def _generate(db, label, plan):
    from repro.core.generator import ScriptGenerator
    from repro.core.schema_gen import generate_base_schemas

    generator = ScriptGenerator(label, plan, cost_db=db)
    return generator.generate(generate_base_schemas(generator.plan, db))


class TestScriptFingerprint:
    def test_twin_generations_agree_exactly(self):
        prints = []
        for _ in range(2):
            db = make_db()
            plan = group_by(
                equi_join(scan(db, "t"), scan(db, "u"), [("k", "j")]),
                ("b",),
                [("count", None, "n")],
            )
            generated = _generate(db, "V", plan)
            prints.append(generated_fingerprint(generated, db, alpha=False))
        assert prints[0] == prints[1]

    def test_view_label_does_not_leak_into_fingerprint(self):
        db = make_db()
        plan = where(scan(db, "t"), Cmp(">", col("a"), lit(5)))
        g1 = _generate(db, "V", plan)
        g2 = _generate(
            db, "completely_different", where(
                scan(db, "t"), Cmp(">", col("a"), lit(5))
            )
        )
        assert generated_fingerprint(g1, db) == generated_fingerprint(g2, db)

    def test_compiled_script_matches_interpreted(self):
        """The basis for the lint ``[compiled]`` dedup: compilation
        preserves every name, schema and IR tree, so the exact script
        fingerprints coincide."""
        from repro.core.compile import compile_script

        db = make_db()
        plan = group_by(
            equi_join(scan(db, "t"), scan(db, "u"), [("k", "j")]),
            ("b",),
            [("sum", col("a"), "tot")],
        )
        generated = _generate(db, "V", plan)
        interpreted = script_fingerprint(
            generated.script, generated.plan, db, alpha=False
        )
        compiled = script_fingerprint(
            compile_script(generated), generated.plan, db, alpha=False
        )
        assert interpreted == compiled

    def test_script_change_changes_fingerprint(self):
        db = make_db()
        g1 = _generate(db, "V", where(scan(db, "t"), Cmp(">", col("a"), lit(5))))
        g2 = _generate(db, "V", where(scan(db, "t"), Cmp(">", col("a"), lit(6))))
        assert generated_fingerprint(g1, db) != generated_fingerprint(g2, db)


# ----------------------------------------------------------------------
# per-node fingerprints
# ----------------------------------------------------------------------
class TestNodeFingerprints:
    def test_shared_subtrees_share_fingerprints_across_plans(self):
        db = make_db()
        sub1 = equi_join(scan(db, "t"), scan(db, "u"), [("k", "j")])
        sub2 = equi_join(scan(db, "t"), scan(db, "u"), [("k", "j")])
        p1 = group_by(sub1, ("b",), [("count", None, "n")])
        p2 = group_by(sub2, ("c",), [("sum", col("a"), "s")])
        from repro.core.idinfer import annotate_plan

        p1, p2 = annotate_plan(p1), annotate_plan(p2)
        fp1 = plan_fingerprints(p1, db)
        fp2 = plan_fingerprints(p2, db)
        assert fp1[p1.child.node_id] == fp2[p2.child.node_id]
        assert fp1[p1.node_id] != fp2[p2.node_id]


# ----------------------------------------------------------------------
# byte stability across processes and hash seeds
# ----------------------------------------------------------------------
# Fingerprints key a *persisted* cache (.repro-cache/) shared between
# runs, so a fingerprint computed today under one PYTHONHASHSEED must
# equal the one computed tomorrow under another.  Same subprocess-matrix
# idiom as tests/test_wire.py and TestLintDeterminism.
_FP_CHILD = r"""
import sys
from repro.analysis import generated_fingerprint, plan_fingerprint
from repro.catalog import CatalogConfig, build_catalog_database, catalog_views
from repro.core.generator import ScriptGenerator
from repro.core.schema_gen import generate_base_schemas

config = CatalogConfig(n_views=10, n_overlap_groups=2, group_size=2,
                       n_duplicates=1, n_subsumed=1)
db = build_catalog_database(config)
out = []
for label, plan in catalog_views(db, config):
    out.append(plan_fingerprint(plan, db))
    out.append(plan_fingerprint(plan, db, alpha=False))
label, plan = catalog_views(db, config)[0]
gen = ScriptGenerator(label, plan, cost_db=db)
generated = gen.generate(generate_base_schemas(gen.plan, db))
out.append(generated_fingerprint(generated, db, alpha=False))
sys.stdout.write("\n".join(out))
"""

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _child_fingerprints(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _FP_CHILD],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedStability:
    def test_fingerprints_stable_across_hash_seeds(self):
        outputs = {_child_fingerprints(seed) for seed in ("0", "4242", "77")}
        assert len(outputs) == 1, "fingerprints depend on PYTHONHASHSEED"

    def test_in_process_matches_subprocess(self):
        """The parent's fingerprints equal a child's: no per-process
        state (id()-based ordering, interning) leaks into the bytes."""
        from repro.catalog import (
            CatalogConfig,
            build_catalog_database,
            catalog_views,
        )

        config = CatalogConfig(
            n_views=10,
            n_overlap_groups=2,
            group_size=2,
            n_duplicates=1,
            n_subsumed=1,
        )
        db = build_catalog_database(config)
        local = []
        for label, plan in catalog_views(db, config):
            local.append(plan_fingerprint(plan, db))
            local.append(plan_fingerprint(plan, db, alpha=False))
        child = _child_fingerprints("303").splitlines()
        assert child[: len(local)] == local
