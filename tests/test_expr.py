"""Unit tests for the expression language."""

import pytest

from repro.errors import ExpressionError, UnknownColumnError
from repro.expr import (
    FALSE,
    TRUE,
    And,
    Call,
    Cmp,
    Not,
    Or,
    all_of,
    any_of,
    col,
    columns_of,
    conjuncts_of,
    equi_join_pairs,
    evaluate,
    lit,
    matches,
    rename_columns,
)

POS = {"a": 0, "b": 1, "c": 2}
ROW = (3, 4, "x")


class TestEvaluation:
    def test_column_and_literal(self):
        assert evaluate(col("a"), POS, ROW) == 3
        assert evaluate(lit(7), POS, ROW) == 7

    def test_arithmetic(self):
        assert evaluate(col("a") + col("b"), POS, ROW) == 7
        assert evaluate(col("b") - col("a"), POS, ROW) == 1
        assert evaluate(col("a") * lit(2), POS, ROW) == 6
        assert evaluate(col("b") / lit(2), POS, ROW) == 2.0
        assert evaluate(-col("a"), POS, ROW) == -3
        assert evaluate(1 + col("a"), POS, ROW) == 4

    def test_comparisons(self):
        assert evaluate(col("a").lt(col("b")), POS, ROW) is True
        assert evaluate(col("a").ge(col("b")), POS, ROW) is False
        assert evaluate(col("c").eq(lit("x")), POS, ROW) is True
        assert evaluate(col("c").ne(lit("x")), POS, ROW) is False
        assert evaluate(col("a").le(lit(3)), POS, ROW) is True
        assert evaluate(col("b").gt(lit(10)), POS, ROW) is False

    def test_boolean_connectives(self):
        expr = col("a").lt(col("b")) & col("c").eq(lit("x"))
        assert evaluate(expr, POS, ROW) is True
        expr = col("a").gt(col("b")) | col("c").eq(lit("x"))
        assert evaluate(expr, POS, ROW) is True
        assert evaluate(~col("a").lt(col("b")), POS, ROW) is False

    def test_in_list(self):
        assert evaluate(col("c").isin(["x", "y"]), POS, ROW) is True
        assert evaluate(col("a").isin([1, 2]), POS, ROW) is False

    def test_null_propagation(self):
        row = (None, 4, "x")
        assert evaluate(col("a") + lit(1), POS, row) is None
        assert evaluate(col("a").eq(lit(3)), POS, row) is None
        assert matches(col("a").eq(lit(3)), POS, row) is False

    def test_three_valued_and_or(self):
        row = (None, 4, "x")
        # None AND False = False; None OR True = True
        assert evaluate(col("a").eq(lit(1)) & FALSE, POS, row) is False
        assert evaluate(col("a").eq(lit(1)) | TRUE, POS, row) is True
        assert evaluate(col("a").eq(lit(1)) & TRUE, POS, row) is None
        assert evaluate(Not(col("a").eq(lit(1))), POS, row) is None

    def test_scalar_functions(self):
        assert evaluate(Call("abs", [lit(-5)]), POS, ROW) == 5
        assert evaluate(Call("concat", [col("c"), lit("!")]), POS, ROW) == "x!"
        assert evaluate(Call("mod", [col("b"), lit(3)]), POS, ROW) == 1
        assert evaluate(Call("coalesce", [lit(None), col("a")]), POS, ROW) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            Call("nope", [lit(1)])

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            evaluate(col("zzz"), POS, ROW)


class TestThreeValuedNullLogic:
    """SQL three-valued semantics at σ boundaries: NULL-vs-value (and
    order-incomparable operands) yield UNKNOWN — never a Python
    TypeError, and never a definite True/False that NOT could flip."""

    def test_null_ordering_comparisons_are_unknown(self):
        row = (None, 4, "x")
        for cmp in ("lt", "le", "gt", "ge", "eq", "ne"):
            assert evaluate(getattr(col("a"), cmp)(lit(3)), POS, row) is None
            assert evaluate(getattr(col("b"), cmp)(col("a")), POS, row) is None

    def test_mixed_type_ordering_is_unknown_not_typeerror(self):
        # A modification stream can write a string into an int column;
        # the ordering comparison must degrade to UNKNOWN, not crash
        # the whole maintenance round.
        row = (3, 4, "x")
        assert evaluate(col("a").lt(col("c")), POS, row) is None
        assert evaluate(col("c").ge(lit(10)), POS, row) is None
        # Equality across types never raises in Python: keep it definite.
        assert evaluate(col("a").eq(col("c")), POS, row) is False
        assert evaluate(col("a").ne(col("c")), POS, row) is True

    def test_mixed_type_comparison_under_not(self):
        row = (3, 4, "x")
        assert evaluate(~col("a").lt(col("c")), POS, row) is None
        assert matches(~col("a").lt(col("c")), POS, row) is False

    def test_in_list_with_null_element(self):
        # x IN (a, NULL) == (x=a OR UNKNOWN): True on a match, UNKNOWN
        # (not False) otherwise.
        assert evaluate(col("a").isin([3, None]), POS, ROW) is True
        assert evaluate(col("a").isin([7, None]), POS, ROW) is None
        assert evaluate(col("a").isin([7, 8]), POS, ROW) is False

    def test_not_in_list_with_null_element(self):
        # The case where UNKNOWN vs False is observable: NOT (x IN
        # (7, NULL)) must be UNKNOWN (filtered out), not True.
        assert evaluate(~col("a").isin([7, None]), POS, ROW) is None
        assert matches(~col("a").isin([7, None]), POS, ROW) is False
        assert evaluate(~col("a").isin([3, None]), POS, ROW) is False

    def test_null_tested_value_in_list(self):
        row = (None, 4, "x")
        assert evaluate(col("a").isin([1, 2]), POS, row) is None
        assert evaluate(col("a").isin([None]), POS, row) is None

    def test_matches_treats_unknown_as_false(self):
        row = (None, 4, "x")
        assert matches(col("a").lt(lit(3)), POS, row) is False
        assert matches(~col("a").lt(lit(3)), POS, row) is False


class TestAnalysis:
    def test_columns_of(self):
        expr = (col("a") + col("b")).lt(Call("abs", [col("c")]))
        assert columns_of(expr) == {"a", "b", "c"}
        assert columns_of(lit(3)) == frozenset()

    def test_conjuncts_flatten(self):
        expr = And([col("a").eq(lit(1)), And([col("b").eq(lit(2)), col("c").eq(lit(3))])])
        assert len(conjuncts_of(expr)) == 3

    def test_conjuncts_of_non_and(self):
        expr = col("a").eq(lit(1)) | col("b").eq(lit(2))
        assert conjuncts_of(expr) == (expr,)

    def test_rename(self):
        expr = col("a").eq(col("b")) & col("c").gt(lit(1))
        renamed = rename_columns(expr, {"a": "a__post", "c": "c__post"})
        assert columns_of(renamed) == {"a__post", "b", "c__post"}

    def test_equi_join_pairs(self):
        cond = col("x").eq(col("y")) & col("p").gt(col("q"))
        pairs, residual = equi_join_pairs(cond, ["x", "p"], ["y", "q"])
        assert pairs == [("x", "y")]
        assert columns_of(residual) == {"p", "q"}

    def test_equi_join_pairs_reversed_sides(self):
        cond = col("y").eq(col("x"))
        pairs, residual = equi_join_pairs(cond, ["x"], ["y"])
        assert pairs == [("x", "y")]
        assert residual == TRUE

    def test_all_any_of(self):
        assert all_of() == TRUE
        assert any_of() == FALSE
        single = col("a").eq(lit(1))
        assert all_of(single) == single
        assert isinstance(all_of(single, col("b").eq(lit(2))), And)
        assert isinstance(any_of(single, col("b").eq(lit(2))), Or)

    def test_expressions_are_hashable_and_equal(self):
        assert col("a") == col("a")
        assert {col("a"), col("a")} == {col("a")}
        assert col("a").eq(lit(1)) == col("a").eq(lit(1))
        assert hash(col("a") + lit(1)) == hash(col("a") + lit(1))
        assert col("a") != col("b")
