"""Tests for the diff-query IR and its executor."""

import pytest

from repro.algebra import AggSpec, scan
from repro.core.apply import apply_diff
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import (
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from repro.core.ir_exec import IrContext, run_ir
from repro.errors import ScriptError
from repro.expr import col, lit
from repro.storage import Table, TableSchema


@pytest.fixture
def ctx(running_example_db):
    return IrContext(running_example_db, running_example_db)


@pytest.fixture
def parts_update():
    schema = DiffSchema(UPDATE, "n0", ("pid",), ("price",), ("price",))
    return schema, Diff(schema, [("P1", 10, 11), ("P2", 20, 22)])


class TestSources:
    def test_diff_source(self, ctx, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        rel = run_ir(DiffSource("d", schema), ctx)
        assert rel.columns == ("pid", "price__pre", "price__post")
        assert len(rel) == 2

    def test_missing_diff_raises(self, ctx, parts_update):
        schema, _ = parts_update
        with pytest.raises(ScriptError):
            run_ir(DiffSource("nope", schema), ctx)

    def test_subview_source(self, ctx, running_example_db):
        node = annotate_plan(scan(running_example_db, "parts"))
        rel = run_ir(SubviewSource(node, "post"), ctx)
        assert rel.as_set() == {("P1", 10), ("P2", 20)}

    def test_applied_source_returns_expansion(self, ctx, running_example_db):
        table = Table(TableSchema("V", ("did", "pid", "price"), ("did", "pid")))
        table.load([("D1", "P1", 10), ("D2", "P1", 10)])
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        applied = apply_diff(table, Diff(schema, [("P1", 10, 11)]))
        ctx.expansions["ret"] = applied
        rel = run_ir(AppliedSource("ret", ("did", "pid"), ("price",)), ctx)
        assert rel.as_set() == {("D1", "P1", 10, 11), ("D2", "P1", 10, 11)}

    def test_empty(self, ctx):
        rel = run_ir(Empty(("a", "b")), ctx)
        assert rel.columns == ("a", "b") and len(rel) == 0


class TestTransforms:
    def test_filter_and_compute(self, ctx, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        ir = Compute(
            Filter(DiffSource("d", schema), col("price__pre").gt(lit(15))),
            [("pid", col("pid")), ("bump", col("price__post") - col("price__pre"))],
        )
        rel = run_ir(ir, ctx)
        assert rel.as_set() == {("P2", 2)}

    def test_distinct(self, ctx, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        ir = Distinct(Compute(DiffSource("d", schema), [("k", lit(1))]))
        assert len(run_ir(ir, ctx)) == 1

    def test_union_rows(self, ctx, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        source = DiffSource("d", schema)
        assert len(run_ir(UnionRows([source, source]), ctx)) == 4

    def test_group_agg(self, ctx, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        ir = GroupAgg(
            Compute(DiffSource("d", schema), [("k", lit("all")), ("v", col("price__post"))]),
            ("k",),
            (AggSpec("sum", col("v"), "total"),),
        )
        assert run_ir(ir, ctx).as_set() == {("all", 33)}


class TestProbes:
    def test_probe_join_fetches_matches(self, ctx, running_example_db, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        dp = annotate_plan(scan(running_example_db, "devices_parts"))
        ir = ProbeJoin(
            DiffSource("d", schema), dp, "post",
            on=[("pid", "pid")], keep=[("did", "did")],
        )
        rel = run_ir(ir, ctx)
        dids = {(r[0], r[3]) for r in rel.rows}
        assert dids == {("P1", "D1"), ("P1", "D2"), ("P2", "D1")}

    def test_probe_join_residual(self, ctx, running_example_db, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        dp = annotate_plan(scan(running_example_db, "devices_parts"))
        ir = ProbeJoin(
            DiffSource("d", schema), dp, "post",
            on=[("pid", "pid")], keep=[("did", "did")],
            residual=col("did").eq(lit("D1")),
        )
        assert len(run_ir(ir, ctx)) == 2

    def test_probe_semi_positive_and_negated(self, ctx, running_example_db, parts_update):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        dp = annotate_plan(scan(running_example_db, "devices_parts"))
        semi = ProbeSemi(DiffSource("d", schema), dp, "post", on=[("pid", "pid")])
        assert len(run_ir(semi, ctx)) == 2
        anti = ProbeSemi(
            DiffSource("d", schema), dp, "post", on=[("pid", "pid")], negated=True
        )
        assert len(run_ir(anti, ctx)) == 0

    def test_probe_semi_residual_over_sub_columns(
        self, ctx, running_example_db, parts_update
    ):
        schema, diff = parts_update
        ctx.diffs["d"] = diff
        dp = annotate_plan(scan(running_example_db, "devices_parts"))
        semi = ProbeSemi(
            DiffSource("d", schema), dp, "post", on=[("pid", "pid")],
            residual=col("sub__did").eq(lit("D2")),
        )
        rel = run_ir(semi, ctx)
        assert {r[0] for r in rel.rows} == {"P1"}


class TestCacheStates:
    def test_cache_read_matches_state(self, ctx, running_example_db):
        node = annotate_plan(scan(running_example_db, "parts"))
        cache = Table(
            TableSchema("cache", ("pid", "price"), ("pid",)),
            counters=running_example_db.counters,
        )
        cache.load([("P1", 999)])  # deliberately different content
        ctx.caches[node.node_id] = cache
        ctx.cache_state[node.node_id] = "pre"
        # Pre-state read hits the cache; post recomputes from the table.
        pre = run_ir(SubviewSource(node, "pre"), ctx)
        assert pre.as_set() == {("P1", 999)}
        post = run_ir(SubviewSource(node, "post"), ctx)
        assert post.as_set() == {("P1", 10), ("P2", 20)}
        ctx.mark_cache_updated(node.node_id)
        post2 = run_ir(SubviewSource(node, "post"), ctx)
        assert post2.as_set() == {("P1", 999)}

    def test_mark_unknown_cache_raises(self, ctx):
        with pytest.raises(ScriptError):
            ctx.mark_cache_updated(12345)
