"""Log-bucketed histograms: bucketing, percentiles, merges, threading."""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.hist import (
    SUBBUCKETS,
    ConcurrentLogHistogram,
    LogHistogram,
    bucket_bounds,
    bucket_index,
)

positive_values = st.one_of(
    st.integers(min_value=1, max_value=10**9),
    st.floats(
        min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
)
observations = st.lists(
    st.one_of(st.just(0), st.just(0.0), positive_values), max_size=80
)


class TestBucketing:
    def test_bucket_contains_value(self):
        for value in (1e-6, 0.013, 0.5, 0.9999, 1.0, 1.5, 7.0, 12345.678):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi, (value, lo, hi)

    def test_boundary_values_land_in_upper_bucket(self):
        # Exact powers of two and exact sub-bucket edges must bucket
        # deterministically: the lower bound is inclusive.
        for exponent in range(-8, 9):
            base = math.ldexp(1.0, exponent)
            for sub in range(SUBBUCKETS):
                edge = base * (1 + sub / SUBBUCKETS)
                lo, hi = bucket_bounds(bucket_index(edge))
                assert lo == edge, (edge, lo)
                assert edge < hi

    def test_buckets_tile_the_line(self):
        # Consecutive indices produce adjacent [lo, hi) ranges.
        for idx in range(-20, 60):
            assert bucket_bounds(idx)[1] == bucket_bounds(idx + 1)[0]

    @given(positive_values)
    def test_relative_error_bound(self, value):
        lo, hi = bucket_bounds(bucket_index(float(value)))
        # 4 sub-buckets per octave: upper/lower ratio <= 1 + 1/(SUB+...)
        assert hi / lo <= 1.0 + 1.0 / SUBBUCKETS + 1e-12


class TestLogHistogram:
    def test_empty(self):
        hist = LogHistogram("x")
        assert hist.count == 0
        assert hist.percentile(50.0) is None
        assert hist.quantile_summary()["max"] is None

    def test_zero_observations_count(self):
        hist = LogHistogram("x")
        hist.observe(0)
        hist.observe(0.0)
        hist.observe(4.0)
        assert hist.count == 3
        assert hist.zero_count == 2
        # rank 1 and 2 are the zeros
        assert hist.percentile(50.0) == 0.0

    @given(observations)
    def test_percentiles_monotone_and_bounded(self, values):
        hist = LogHistogram("x")
        for v in values:
            hist.observe(v)
        if not values:
            assert hist.percentile(95.0) is None
            return
        p50, p95, p99 = (hist.percentile(q) for q in (50.0, 95.0, 99.0))
        assert 0.0 <= p50 <= p95 <= p99 <= float(hist.max)
        assert p50 >= 0.0

    @given(observations, observations)
    def test_merge_equals_combined_stream(self, a_vals, b_vals):
        a = LogHistogram("a")
        b = LogHistogram("b")
        combined = LogHistogram("c")
        for v in a_vals:
            a.observe(v)
            combined.observe(v)
        for v in b_vals:
            b.observe(v)
            combined.observe(v)
        merged = LogHistogram.merged([a, b])
        assert merged.count == combined.count
        assert merged.zero_count == combined.zero_count
        assert merged.buckets == combined.buckets
        assert merged.min == combined.min
        assert merged.max == combined.max
        assert merged.total == pytest.approx(combined.total)

    @given(observations, observations, observations)
    def test_merge_associative_on_integer_counts(self, a_vals, b_vals, c_vals):
        def hist(values):
            h = LogHistogram()
            for v in values:
                h.observe(v)
            return h

        left = LogHistogram.merged(
            [LogHistogram.merged([hist(a_vals), hist(b_vals)]), hist(c_vals)]
        )
        right = LogHistogram.merged(
            [hist(a_vals), LogHistogram.merged([hist(b_vals), hist(c_vals)])]
        )
        assert left.count == right.count
        assert left.buckets == right.buckets
        assert left.zero_count == right.zero_count
        assert left.min == right.min and left.max == right.max

    def test_percentile_within_bucket_error(self):
        hist = LogHistogram("x")
        values = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        for v in values:
            hist.observe(v)
        # p50 approximates the true median within one bucket's width.
        true_median = 8
        p50 = hist.percentile(50.0)
        assert p50 >= true_median
        assert p50 <= true_median * (1 + 1.0 / SUBBUCKETS) + 1e-9

    def test_roundtrip_as_dict(self):
        hist = LogHistogram("lat", unit="seconds")
        for v in (0, 0.001, 0.5, 2.5, 2.5, 40):
            hist.observe(v)
        data = hist.as_dict()
        assert data["type"] == "loghist"
        assert data["unit"] == "seconds"
        back = LogHistogram.from_dict(data, "lat")
        assert back.count == hist.count
        assert back.buckets == hist.buckets
        assert back.percentile(95.0) == hist.percentile(95.0)


class TestConcurrentLogHistogram:
    def test_single_thread_matches_plain(self):
        conc = ConcurrentLogHistogram("x", unit="rows")
        plain = LogHistogram("x", unit="rows")
        for v in (1, 2, 3, 0, 9.5):
            conc.observe(v)
            plain.observe(v)
        merged = conc.merged()
        assert merged.count == plain.count
        assert merged.buckets == plain.buckets
        assert len(conc.shards()) == 1

    def test_threaded_observations_all_land(self):
        conc = ConcurrentLogHistogram("x")
        n_threads, per_thread = 8, 500

        def work(seed: int) -> None:
            for i in range(per_thread):
                conc.observe((seed * per_thread + i) % 97 + 1)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = conc.merged()
        assert merged.count == n_threads * per_thread
        assert len(conc.shards()) == n_threads
        # merged equals the manual fold of the per-thread shards
        manual = LogHistogram.merged(conc.shards())
        assert manual.buckets == merged.buckets
        assert manual.count == merged.count

    def test_as_dict_reports_shards(self):
        conc = ConcurrentLogHistogram("x")
        conc.observe(1)
        assert conc.as_dict()["shards"] == 1
