"""The /metrics endpoint: exposition rendering, validation, HTTP."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics
from repro.obs.serve import (
    build_snapshot,
    render_prometheus,
    serve,
    validate_exposition,
)


class TestRenderPrometheus:
    def test_counter_gauge_histogram_families(self):
        reg = metrics.MetricsRegistry()
        reg.counter("engine.maintain_rounds").inc(3)
        reg.gauge("some.gauge").set(1.5)
        reg.histogram("engine.log_entries").observe(10)
        hist = reg.loghist("engine.round_seconds", unit="seconds")
        for v in (0.01, 0.02, 0.4):
            hist.observe(v)
        text = render_prometheus(reg)
        assert "# TYPE repro_engine_maintain_rounds counter" in text
        assert "repro_engine_maintain_rounds 3" in text
        assert "repro_some_gauge 1.5" in text
        assert "# TYPE repro_engine_log_entries summary" in text
        assert "# TYPE repro_engine_round_seconds histogram" in text
        assert "repro_engine_round_seconds_count 3" in text
        assert 'le="+Inf"' in text
        assert validate_exposition(text) == []

    def test_per_view_metrics_become_labels(self):
        reg = metrics.MetricsRegistry()
        reg.loghist("view.round_seconds.Q*1", unit="seconds").observe(0.01)
        reg.loghist("view.round_seconds.Q7", unit="seconds").observe(0.02)
        reg.gauge("drift.worst_ratio.Q*1").set(0.97)
        text = render_prometheus(reg)
        # the star never reaches a metric name; it lives in a label
        assert 'repro_view_round_seconds_count{view="Q*1"} 1' in text
        assert 'repro_view_round_seconds_count{view="Q7"} 1' in text
        assert 'repro_drift_worst_ratio{view="Q*1"} 0.97' in text
        # one TYPE header for the whole labeled family
        assert text.count("# TYPE repro_view_round_seconds histogram") == 1
        assert validate_exposition(text) == []

    def test_unset_gauges_are_skipped(self):
        reg = metrics.MetricsRegistry()
        reg.gauge("never.set")
        text = render_prometheus(reg)
        assert "never_set" not in text


class TestValidateExposition:
    def test_accepts_well_formed(self):
        text = (
            "# TYPE repro_x counter\n"
            "repro_x 3\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 7.5\n"
            "repro_h_count 5\n"
        )
        assert validate_exposition(text) == []

    def test_rejects_sample_without_type(self):
        errors = validate_exposition("repro_orphan 1\n")
        assert any("no TYPE" in e for e in errors)

    def test_rejects_malformed_line(self):
        errors = validate_exposition("# TYPE repro_x counter\nrepro_x one\n")
        assert any("malformed sample" in e for e in errors)

    def test_rejects_decreasing_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
        )
        errors = validate_exposition(text)
        assert any("decreased" in e for e in errors)

    def test_rejects_count_inf_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 4\n"
        )
        errors = validate_exposition(text)
        assert any("_count disagrees" in e for e in errors)

    def test_rejects_duplicate_type(self):
        text = "# TYPE repro_x counter\n# TYPE repro_x counter\nrepro_x 1\n"
        errors = validate_exposition(text)
        assert any("duplicate TYPE" in e for e in errors)


@pytest.fixture(scope="module")
def demo_loop():
    """Three demo rounds, observed into a registry the tests can hold.

    The autouse ``_scoped_metrics`` fixture gives every *test* a fresh
    registry, so this module-scoped loop must capture its own and pass
    it around explicitly.
    """
    from repro.obs.live import DemoLoop

    registry = metrics.MetricsRegistry()
    with metrics.scoped(registry):
        loop = DemoLoop(shards=2, users=60, updates=12, interval=0.05)
        loop.run_round()
        loop.run_round()
        loop.run_round()
    loop.registry = registry
    return loop


class TestLiveEngine:
    def test_metrics_endpoint_live(self, demo_loop):
        text = render_prometheus(
            demo_loop.registry, engine=demo_loop.engine
        )
        assert validate_exposition(text) == []
        assert "repro_view_pending_entries" in text
        assert "repro_view_lag_seconds_bucket" in text
        assert "repro_drift_ewma" in text
        assert "repro_modlog_position" in text

    def test_snapshot_document(self, demo_loop):
        snap = build_snapshot(
            demo_loop.engine, demo_loop.registry, rounds=demo_loop.rounds_run
        )
        json.dumps(snap)  # wire-format must serialize
        assert snap["schema"] == "repro.obs.snapshot"
        assert snap["rounds"] == 3
        assert set(snap["views"]) == set(demo_loop.view_names)
        for name in demo_loop.view_names:
            assert snap["freshness"]["views"][name]["pending"] == 0
            assert "total_cost" in snap["views"][name]
            assert "parallel" in snap["views"][name]

    def test_http_round_trip(self, demo_loop):
        server = serve(
            engine=demo_loop.engine,
            registry=demo_loop.registry,
            loop=demo_loop,
            port=0,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            def get(path):
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10
                ) as response:
                    return response.status, response.read().decode()

            status, text = get("/metrics")
            assert status == 200
            assert validate_exposition(text) == []

            status, body = get("/snapshot")
            assert status == 200
            snap = json.loads(body)
            assert snap["schema"] == "repro.obs.snapshot"

            status, body = get("/freshness")
            assert status == 200
            assert "views" in json.loads(body)

            status, body = get("/healthz")
            assert status == 200
            assert json.loads(body)["ok"] is True

            with pytest.raises(urllib.error.HTTPError) as err:
                get("/nope")
            assert err.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestDemoLoopLifecycle:
    """stop() must join the loop; a dead loop must be *visible*."""

    def _loop(self):
        from repro.obs.live import DemoLoop

        return DemoLoop(
            shards=1, users=40, updates=5, interval=0.01, views=("Q7",)
        )

    def test_stop_joins_thread_and_stays_healthy(self):
        loop = self._loop()
        assert loop.healthy  # never started: healthy by definition
        loop.start()
        loop.stop(timeout=10)
        assert loop._thread is None
        assert loop.healthy  # a *requested* stop is not a failure
        loop.stop()  # idempotent

    def test_dead_loop_turns_unhealthy_and_healthz_returns_503(self):
        loop = self._loop()

        def boom():
            raise RuntimeError("injected failure")

        loop.run_round = boom  # type: ignore[method-assign]
        loop.start()
        deadline = time.monotonic() + 10
        while loop.last_error is None and time.monotonic() < deadline:
            time.sleep(0.01)
        try:
            assert loop.last_error is not None
            assert "injected failure" in loop.last_error
            assert not loop.healthy

            server = serve(engine=loop.engine, loop=loop, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            port = server.server_address[1]
            try:
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=10
                    )
                assert err.value.code == 503
                body = json.loads(err.value.read().decode())
                assert body["ok"] is False
                assert "injected failure" in body["error"]
            finally:
                server.shutdown()
                server.server_close()
        finally:
            loop.stop()
        # a crash-stopped loop stays unhealthy even after stop()
        assert not loop.healthy
