"""Wire format: round trips, strictness, cross-process determinism.

The determinism tests are the important half: the process shard backend
is only exact if the coordinator and every worker agree byte-for-byte on
what travels.  ``shard_of`` routing and every ``wire`` encoder must
therefore be independent of ``PYTHONHASHSEED`` — pinned here by running
the same generated inputs in subprocesses under different hash seeds and
comparing digests.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import zlib

import pytest

from repro.core import wire
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.modlog import LoggedModification
from repro.errors import WireError
from repro.storage import CounterSet, shard_key_bytes, shard_of

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def _sample_instances() -> dict[str, Diff]:
    ins = DiffSchema(INSERT, "t", ("k",), (), ("a", "b"))
    upd = DiffSchema(UPDATE, "t", ("k",), ("a",), ("a",))
    dele = DiffSchema(DELETE, "t", ("k",), ("a", "b"), ())
    return {
        "d1_ins": Diff(ins, [(1, "x", None), (2, "y", 3.5)]),
        "d2_upd": Diff(upd, [(1, 10, 11), (4, False, True)]),
        "d3_del": Diff(dele, [(9, "z", 0)]),
    }


def test_instances_round_trip():
    instances = _sample_instances()
    doc = wire.encode_instances(instances)
    back = wire.decode_instances(doc)
    assert sorted(back) == sorted(instances)
    for name, diff in instances.items():
        got = back[name]
        assert got.schema.kind == diff.schema.kind
        assert got.schema.target == diff.schema.target
        assert got.schema.columns == diff.schema.columns
        assert got.rows == diff.rows


def test_instances_doc_is_json_safe_and_columnar():
    doc = wire.encode_instances(_sample_instances())
    json.dumps(doc)  # primitives only, no tuples/sets
    for entry in doc["diffs"]:
        for col in entry["cols"]:
            assert len(col) == entry["rows"]  # one list per attribute


def test_log_batch_round_trip_and_clock_domain():
    entries = [
        LoggedModification("+", "t", (1,), row=(1, "a", None)),
        LoggedModification("u", "t", (1,), changes={"b": 2, "a": "c"}),
        LoggedModification("-", "t", (1,)),
    ]
    for i, entry in enumerate(entries):
        entry.seq = i + 1
        entry.logged_at = 123.456  # coordinator monotonic clock
    doc = wire.encode_log_batch(entries)
    # the coordinator's monotonic reading must never cross the wire
    assert b"123.456" not in wire.canonical_bytes(doc)
    back = wire.decode_log_batch(doc)
    assert len(back) == 3
    for orig, got in zip(entries, back):
        assert (got.kind, got.table, got.key) == (orig.kind, orig.table, orig.key)
        assert got.row == orig.row
        assert got.changes == orig.changes
        assert got.seq == orig.seq
        assert got.logged_at == 0.0  # worker clock domain starts blank


def test_counters_round_trip_is_exact():
    cs = CounterSet()
    with cs.phase("cache_update"):
        cs.count_index_lookup(3)
        cs.count_tuple_read(7)
    with cs.phase("view_update"):
        cs.count_tuple_write(2)
        cs.count_index_maintenance(5)
    back = wire.decode_counters(wire.encode_counters(cs))
    assert {p: c.as_dict() for p, c in back.phases.items()} == {
        p: c.as_dict() for p, c in cs.phases.items()
    }
    assert back.total.as_dict() == cs.total.as_dict()


def test_writeset_round_trip_preserves_per_table_order():
    ops = {
        "c3": [
            ("s", (1,), (1, "a")),
            ("d", (2,)),
            ("s", (2,), (2, "b")),
            ("x", ("a",)),
        ],
        "o1": [("d", (5, "k"))],
    }
    back = wire.decode_writeset(wire.encode_writeset(ops))
    assert back == {tag: list(map(tuple, entries)) for tag, entries in ops.items()}


# ----------------------------------------------------------------------
# strictness
# ----------------------------------------------------------------------
def test_non_primitive_diff_value_rejected():
    schema = DiffSchema(INSERT, "t", ("k",), (), ("a",))
    bad = Diff(schema, [(1, (2, 3))])  # tuple-valued attribute
    with pytest.raises(WireError):
        wire.encode_instances({"d": bad})


def test_non_primitive_log_value_rejected():
    entry = LoggedModification("+", "t", (1,), row=(1, {"nested": "dict"}))
    with pytest.raises(WireError):
        wire.encode_log_batch([entry])


def test_primitive_check_rejects_subclasses():
    class FancyInt(int):
        pass

    with pytest.raises(WireError):
        wire.check_primitive(FancyInt(3))
    assert wire.check_primitive(3) == 3
    assert wire.check_primitive(None) is None


def test_unknown_write_op_rejected():
    with pytest.raises(WireError):
        wire.encode_writeset({"t": [("q", (1,))]})


def test_decoders_reject_wrong_kind():
    doc = wire.encode_counters(CounterSet())
    with pytest.raises(WireError):
        wire.decode_instances(doc)
    with pytest.raises(WireError):
        wire.decode_log_batch({"kind": "modlog-batch", "v": 999})


# ----------------------------------------------------------------------
# canonical bytes: float edge cases and injectivity
# ----------------------------------------------------------------------
class TestCanonicalFloats:
    def _bytes(self, value):
        return wire.canonical_bytes({"v": value})

    def test_int_and_float_of_equal_value_differ(self):
        # 1 == 1.0 as dict keys/values, but content addressing must keep
        # them apart: decode reproduces the exact type.
        assert self._bytes(1) != self._bytes(1.0)

    def test_signed_zero_is_preserved(self):
        assert self._bytes(0.0) != self._bytes(-0.0)

    def test_bool_and_int_differ(self):
        assert self._bytes(True) != self._bytes(1)
        assert self._bytes(False) != self._bytes(0)

    def test_nan_and_infinities_are_deterministic(self):
        # Plain json.dumps would emit non-standard NaN/Infinity tokens
        # (or raise under allow_nan=False); the "~f" tag renders them via
        # repr, so they get a stable strict-JSON byte form.
        for value in (float("nan"), float("inf"), float("-inf")):
            assert self._bytes(value) == self._bytes(value)
        assert self._bytes(float("inf")) != self._bytes(float("-inf"))
        assert self._bytes(float("nan")) != self._bytes(float("inf"))

    def test_tagged_list_escape_keeps_encoding_injective(self):
        # A genuine list that *looks like* a float tag must not collide
        # with an actual float's canonical form.
        assert self._bytes(["~f", "1.0"]) != self._bytes(1.0)
        # ... and the escape itself is escaped.
        assert self._bytes(["~l", "~f", "1.0"]) != self._bytes(["~f", "1.0"])

    def test_float_repr_round_trips_the_value(self):
        for value in (0.1, 1e300, 5e-324, -0.0, 3.5):
            doc = wire.canonical_bytes({"v": value})
            tagged = json.loads(doc)["v"]
            assert tagged[0] == "~f"
            back = float(tagged[1])
            assert (back == value and str(back) == str(value)) or (
                back != back and value != value
            )

    def test_non_str_dict_key_rejected(self):
        with pytest.raises(WireError):
            wire.canonical_bytes({"d": {1: "x"}})


def test_instances_round_trip_float_edge_cases():
    schema = DiffSchema(INSERT, "t", ("k",), (), ("a",))
    rows = [(1, 1.0), (2, -0.0), (3, float("nan")), (4, 1)]
    doc = wire.encode_instances({"d": Diff(schema, rows)})
    for columnar in (False, True):
        back = wire.decode_instances(doc, columnar=columnar)["d"].rows
        assert back[0] == (1, 1.0) and type(back[0][1]) is float
        assert str(back[1][1]) == "-0.0"
        assert back[2][1] != back[2][1]  # NaN survives
        assert type(back[3][1]) is int


# ----------------------------------------------------------------------
# shard_of determinism (in process)
# ----------------------------------------------------------------------
def test_shard_of_hashes_canonical_key_bytes():
    for key in [("u1",), (3, "x"), (None, 2.5, True)]:
        assert shard_of(key, 8) == zlib.crc32(shard_key_bytes(key)) % 8


# ----------------------------------------------------------------------
# cross-process determinism under PYTHONHASHSEED
# ----------------------------------------------------------------------
# The child builds wire documents and shard assignments from generated
# crosscheck cases, deliberately feeding construction through *sets* (the
# only stdlib container whose iteration order depends on the hash seed)
# so an encoder that forgot to sort would produce seed-dependent bytes.
_CHILD_SCRIPT = r"""
import hashlib, json, sys, zlib
from repro.core import wire
from repro.core.diffs import INSERT, UPDATE, Diff, DiffSchema
from repro.core.modlog import LoggedModification
from repro.crosscheck.generate import generate_case
from repro.storage import shard_of
from repro.storage.counters import CounterSet

def digest(doc):
    return hashlib.sha256(wire.canonical_bytes(doc)).hexdigest()

out = {"instances": [], "log": [], "writeset": [], "shards": []}
for index in range(6):
    case = generate_case(1234, index)
    # ---- i-diff instances, built in set-iteration order ----
    instances = {}
    specs = {}
    for t in case["tables"]:
        name = t["name"]
        key = tuple(t["key"])
        rest = tuple(c for c in t["columns"] if c not in key)
        schema = DiffSchema(INSERT, name, key, (), rest)
        order = [t["columns"].index(c) for c in key + rest]
        rows = [tuple(row[i] for i in order) for row in t["rows"]]
        specs["d_" + name] = (schema, rows)
    for label in set(specs):  # seed-dependent insertion order
        schema, rows = specs[label]
        instances[label] = Diff(schema, rows)
    out["instances"].append(digest(wire.encode_instances(instances)))
    # ---- modlog batch ----
    entries = []
    for seq, mod in enumerate(case["batches"][0], start=1):
        if mod["op"] == "insert":
            e = LoggedModification("+", mod["table"], (mod["row"][0],),
                                   row=tuple(mod["row"]))
        elif mod["op"] == "delete":
            e = LoggedModification("-", mod["table"], tuple(mod["key"]))
        else:
            e = LoggedModification("u", mod["table"], tuple(mod["key"]),
                                   changes=dict(mod["changes"]))
        e.seq = seq
        entries.append(e)
    out["log"].append(digest(wire.encode_log_batch(entries)))
    # ---- write-set, tags via a set ----
    ops = {}
    tags = {"c%d" % i for i in range(5)} | {"o%d" % i for i in range(3)}
    for tag in tags:  # seed-dependent iteration order
        ops[tag] = [("s", (len(tag),), (len(tag), tag)), ("x", ("a", "b"))]
    out["writeset"].append(digest(wire.encode_writeset(ops)))
    # ---- routing ----
    for t in case["tables"]:
        for row in t["rows"]:
            key = tuple(row[t["columns"].index(c)] for c in t["key"])
            out["shards"].append(shard_of(key, 4))
cs = CounterSet()
with cs.phase("p"):
    cs.count_tuple_read(3)
out["counters"] = digest(wire.encode_counters(cs))
json.dump(out, sys.stdout, sort_keys=True)
"""


def _run_child(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_wire_documents_identical_across_hash_seeds():
    results = [_run_child(seed) for seed in ("0", "1", "12345")]
    assert results[0] == results[1] == results[2]
    # and the parent process (pytest's own seed) agrees on routing
    assert len(results[0]["shards"]) > 50


def test_parent_and_child_agree_on_shard_assignment():
    child = _run_child("7")
    from repro.crosscheck.generate import generate_case

    mine = []
    for index in range(6):
        case = generate_case(1234, index)
        for t in case["tables"]:
            for row in t["rows"]:
                key = tuple(row[t["columns"].index(c)] for c in t["key"])
                mine.append(shard_of(key, 4))
    assert mine == child["shards"]
