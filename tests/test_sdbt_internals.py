"""Unit tests for the SDBT simulation's internals (lineage, relaxed
plans, map construction)."""

import pytest

from repro.algebra import Join, equi_join, evaluate_plan, group_by, rename, scan, where
from repro.baselines import SdbtEngine
from repro.baselines.sdbt import _decompose, _origins, _relaxed_spj
from repro.core import annotate_plan
from repro.errors import PlanError
from repro.expr import col, lit
from repro.storage import Database
from tests.conftest import build_view_v, build_view_v_prime


class TestOrigins:
    def test_equality_merges_lineage(self, running_example_db):
        plan = annotate_plan(build_view_v_prime(running_example_db))
        origins = _origins(plan.child)
        # The natural-join lowering keeps one 'did' column carrying both
        # devices_parts' and devices' provenance.
        assert ("devices_parts", "did") in origins["did"]
        assert ("devices", "did") in origins["did"]
        assert origins["price"] == {("parts", "price")}

    def test_decompose_key_columns(self, running_example_db):
        plan = annotate_plan(build_view_v_prime(running_example_db))
        shape = _decompose(plan)
        assert shape.key_columns["devices"] == ["did"]
        assert shape.key_columns["parts"] == ["pid"]
        assert sorted(shape.key_columns["devices_parts"]) == ["did", "pid"]

    def test_decompose_rejects_non_aggregate_root(self, running_example_db):
        plan = annotate_plan(build_view_v(running_example_db))
        with pytest.raises(PlanError):
            _decompose(plan)

    def test_decompose_rejects_nested_aggregates(self, running_example_db):
        inner = group_by(
            scan(running_example_db, "devices_parts"),
            ("did",),
            [("count", None, "n")],
        )
        outer = group_by(inner, ("n",), [("count", None, "m")])
        with pytest.raises(PlanError):
            _decompose(annotate_plan(outer))


class TestRelaxedPlans:
    def test_own_selections_dropped(self, running_example_db):
        # Give the tablet a part so the σ actually filters something.
        running_example_db.table("devices_parts").insert_uncounted(("D3", "P2"))
        plan = annotate_plan(build_view_v_prime(running_example_db))
        relaxed = _relaxed_spj(plan.child, {"category"})
        full = evaluate_plan(plan.child, running_example_db)
        wide = evaluate_plan(relaxed, running_example_db)
        # The relaxed plan includes the tablet row the σ filtered out.
        assert len(wide) == len(full) + 1

    def test_other_conditions_kept(self, running_example_db):
        plan = annotate_plan(build_view_v_prime(running_example_db))
        relaxed = _relaxed_spj(plan.child, {"price"})
        wide = evaluate_plan(relaxed, running_example_db)
        # category='phone' still applies when relaxing for parts.
        positions = {c: i for i, c in enumerate(relaxed.columns)}
        assert all(r[positions["category"]] == "phone" for r in wide.rows)

    def test_join_condition_on_relaxed_attr_rejected(self):
        db = Database()
        db.create_table("a", ("k", "x"), ("k",))
        db.create_table("b", ("j", "y"), ("j",))
        db.table("a").load([(1, 5)])
        db.table("b").load([(9, 5)])
        plan = group_by(
            Join(scan(db, "a"), scan(db, "b"), col("x").eq(col("y"))),
            ("k",),
            [("count", None, "n")],
        )
        engine = SdbtEngine(db)
        with pytest.raises(PlanError):
            engine.define_view("V", plan)


class TestMapContents:
    def test_map_drops_own_non_key_attrs(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        assert "price" not in view.maps["parts"].schema.columns
        assert "category" not in view.maps["devices"].schema.columns
        # ... but other tables' attrs stay available for completion.
        assert "price" in view.maps["devices"].schema.columns

    def test_fixed_mode_builds_only_requested_maps(self, running_example_db):
        engine = SdbtEngine(running_example_db, streamed_tables=["parts"])
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        assert set(view.maps) == {"parts"}

    def test_maps_indexed_by_table_key(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        assert view.maps["parts"].has_index(("pid",))
