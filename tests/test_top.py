"""The ``repro top`` dashboard renderer and CLI plumbing."""

from __future__ import annotations

import json

from repro.obs import metrics
from repro.obs.serve import build_snapshot
from repro.obs.top import render_dashboard


def _demo_snapshot():
    from repro.obs.live import DemoLoop

    with metrics.scoped() as registry:
        loop = DemoLoop(shards=2, users=60, updates=12)
        loop.run_round()
        loop.run_round()
        snapshot = build_snapshot(
            loop.engine, registry, rounds=loop.rounds_run
        )
    # the snapshot must survive a JSON round trip: that is exactly what
    # the --url mode receives from /snapshot
    return json.loads(json.dumps(snapshot)), loop


class TestRenderDashboard:
    def test_renders_all_views(self):
        snapshot, loop = _demo_snapshot()
        frame = render_dashboard(snapshot)
        for name in loop.view_names:
            assert name in frame
        assert "log position" in frame
        assert "round latency" in frame
        assert "shards:" in frame
        assert "pending" in frame

    def test_shows_round_count_and_position(self):
        snapshot, _loop = _demo_snapshot()
        frame = render_dashboard(snapshot)
        assert "rounds 2" in frame
        assert f"log position {snapshot['freshness']['log_position']}" in frame

    def test_drift_alerts_section(self):
        snapshot, _loop = _demo_snapshot()
        if snapshot["drift"]["alerts"]:
            frame = render_dashboard(snapshot)
            assert "COST504 drift alerts" in frame

    def test_handles_empty_snapshot(self):
        frame = render_dashboard({"schema": "repro.obs.snapshot"})
        assert "repro top" in frame  # renders headers, no crash


class TestCli:
    def test_repro_top_once(self, capsys):
        from repro.cli import main

        code = main(
            [
                "top",
                "--once",
                "--no-clear",
                "--users",
                "50",
                "--updates",
                "10",
                "--views",
                "Q7",
                "Q15",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Q7" in out and "Q15" in out
        assert "repro top" in out

    def test_module_entrypoint_args(self):
        from repro.obs.top import main as top_main

        code = top_main(
            ["--once", "--no-clear", "--users", "50", "--updates", "10"]
        )
        assert code == 0

    def test_unknown_view_rejected(self):
        from repro.obs.live import DemoLoop
        import pytest

        with pytest.raises(ValueError, match="unknown BSMA views"):
            DemoLoop(views=["nope"])
