"""Tests for the tuple-based, recompute and SDBT baselines."""

import pytest

from repro.algebra import evaluate_plan, group_by, natural_join, scan, where
from repro.baselines import RecomputeEngine, SdbtEngine, TupleIvmEngine
from repro.baselines.tuple_ivm import TDelta, repair_updates
from repro.core import IdIvmEngine
from repro.errors import PlanError
from repro.expr import col, lit
from tests.conftest import build_view_v, build_view_v_prime


class TestRepairUpdates:
    def test_pairs_delete_and_insert_on_same_key(self):
        delta = TDelta(
            inserts=[(1, "new"), (3, "c")],
            deletes=[(1, "old"), (2, "b")],
        )
        out = repair_updates(delta, [0])
        assert out.updates == [((1, "old"), (1, "new"))]
        assert out.inserts == [(3, "c")]
        assert out.deletes == [(2, "b")]

    def test_identical_rows_cancel(self):
        delta = TDelta(inserts=[(1, "same")], deletes=[(1, "same")])
        out = repair_updates(delta, [0])
        assert out.is_empty()


class TestTupleEngine:
    def test_flat_view(self, running_example_db):
        engine = TupleIvmEngine(running_example_db)
        view = engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.log.insert("parts", ("P3", 5))
        engine.log.insert("devices_parts", ("D2", "P3"))
        engine.log.delete("devices_parts", ("D1", "P2"))
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_update_cost_includes_join_probes(self, running_example_db):
        """The t-diff computation joins back through the base tables —
        nonzero view_diff cost where the ID approach pays nothing."""
        engine = TupleIvmEngine(running_example_db)
        engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        assert report.cost_of("view_diff") > 0

    def test_aggregate_view(self, running_example_db):
        engine = TupleIvmEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.log.update("devices", ("D3",), {"category": "phone"})
        engine.log.insert("devices_parts", ("D3", "P1"))
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_diff_sizes_reported(self, running_example_db):
        engine = TupleIvmEngine(running_example_db)
        engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        assert report.diff_sizes["Du"] == 2  # one per view tuple (p = 2)


class TestRecomputeEngine:
    def test_recompute_matches(self, running_example_db):
        engine = RecomputeEngine(running_example_db)
        view = engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected
        # Recomputation reads every base row: far above the IVM cost.
        assert report.total_cost > 8


class TestSdbtEngine:
    def _view(self, db, config_selectivity=True):
        return build_view_v_prime(db)

    def test_fixed_mode_updates(self, running_example_db):
        engine = SdbtEngine(running_example_db, streamed_tables=["parts"])
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_fixed_mode_rejects_unstreamed_changes(self, running_example_db):
        from repro.errors import ScriptError

        engine = SdbtEngine(running_example_db, streamed_tables=["parts"])
        engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("devices", ("D1",), {"category": "tablet"})
        with pytest.raises(ScriptError):
            engine.maintain()

    def test_streams_mode_mixed_batch(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.log.update("devices", ("D3",), {"category": "phone"})
        engine.log.insert("parts", ("P3", 7))
        engine.log.insert("devices_parts", ("D3", "P3"))
        engine.log.delete("devices_parts", ("D1", "P2"))
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_selection_crossing_update(self, running_example_db):
        """The relaxed map retains non-phone rows so a category flip is
        answerable from the devices map."""
        engine = SdbtEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("devices", ("D1",), {"category": "tablet"})
        engine.maintain()
        expected = evaluate_plan(view.plan, running_example_db).as_set()
        assert view.table.as_set() == expected

    def test_streams_pays_map_maintenance(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["Vp"]
        assert report.cost_of("map_update") > 0

    def test_fixed_pays_no_map_maintenance_for_updates(self, running_example_db):
        engine = SdbtEngine(running_example_db, streamed_tables=["parts"])
        engine.define_view("Vp", build_view_v_prime(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["Vp"]
        assert report.cost_of("map_update") == 0

    def test_requires_aggregate_root(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        with pytest.raises(PlanError):
            engine.define_view("V", build_view_v(running_example_db))

    def test_multi_round(self, running_example_db):
        engine = SdbtEngine(running_example_db)
        view = engine.define_view("Vp", build_view_v_prime(running_example_db))
        for price in (11, 13, 8):
            engine.log.update("parts", ("P1",), {"price": price})
            engine.maintain()
            expected = evaluate_plan(view.plan, running_example_db).as_set()
            assert view.table.as_set() == expected


class TestCrossSystemAgreement:
    def test_all_systems_agree_on_aggregate_view(self, running_example_db):
        import copy

        def fresh_db():
            from tests.conftest import running_example_db as fixture  # noqa: F401
            from repro.storage import Database

            db = Database()
            db.create_table("devices", ("did", "category"), ("did",))
            db.create_table("parts", ("pid", "price"), ("pid",))
            db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
            db.table("devices").load(
                [("D1", "phone"), ("D2", "phone"), ("D3", "tablet")]
            )
            db.table("parts").load([("P1", 10), ("P2", 20)])
            db.table("devices_parts").load(
                [("D1", "P1"), ("D2", "P1"), ("D1", "P2")]
            )
            return db

        outcomes = []
        for factory in (
            IdIvmEngine,
            TupleIvmEngine,
            RecomputeEngine,
            SdbtEngine,
        ):
            db = fresh_db()
            engine = factory(db)
            view = engine.define_view("Vp", build_view_v_prime(db))
            engine.log.update("parts", ("P1",), {"price": 11})
            engine.log.update("parts", ("P2",), {"price": 21})
            engine.maintain()
            outcomes.append(view.table.as_set())
        assert all(o == outcomes[0] for o in outcomes)
