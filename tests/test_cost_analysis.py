"""The symbolic cost-inference pass (:mod:`repro.analysis.cost`).

Covers the walker end-to-end (model inference over generated
∆-scripts), the predicted-vs-measured reconciliation policy (COST503),
the engine/sharded wiring of ``predicted_counts``, the COST501/502
minimality lints, the chain-parameter extraction used by the
benchmarks, and the crosscheck runner's cost leg.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_generated
from repro.analysis.cost import (
    SCRIPT_PHASES,
    CostDeviation,
    estimate_chain_parameters,
    infer_script_cost,
    reconcile_counts,
    reconcile_report,
)
from repro.core import IdIvmEngine
from repro.core.sharded import ShardedEngine
from repro.costmodel import ScriptCostModel
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
    build_flat_view,
)

CONFIG = DevicesConfig(n_parts=60, n_devices=60, diff_size=6, fanout=3)


def _define(engine_cls=IdIvmEngine, build_view=build_flat_view, **kwargs):
    db = build_devices_database(CONFIG)
    engine = engine_cls(db, **kwargs)
    view = engine.define_view("V", build_view(db, CONFIG))
    return db, engine, view


class TestInference:
    def test_flat_view_yields_a_model(self):
        _db, _engine, view = _define()
        assert isinstance(view.cost_model, ScriptCostModel)
        prediction = view.cost_model.predict_from_diff_sizes({"Du": 6})
        assert set(prediction) <= set(SCRIPT_PHASES)
        assert prediction["view_update"]["index_lookups"] > 0

    def test_aggregate_view_yields_a_model(self):
        _db, _engine, view = _define(build_view=build_aggregate_view)
        prediction = view.cost_model.predict_from_diff_sizes({"Du": 6})
        assert "cache_update" in prediction
        assert prediction["cache_update"]["total"] > 0

    def test_infer_script_cost_is_pure(self):
        """Inference only reads statistics — it never mutates the view
        or pollutes the maintenance counters (define_view resets)."""
        db, engine, view = _define()
        assert all(c.total == 0 for c in db.counters.snapshot().values())
        model = infer_script_cost(view.generated, db)
        assert model.render()  # human-readable form exists

    def test_symbols_resolve_to_numbers(self):
        db, _engine, view = _define()
        prediction = view.cost_model.predict_from_diff_sizes({"Du": 4})
        for phase, metrics in prediction.items():
            for metric, value in metrics.items():
                assert isinstance(value, float), (phase, metric)
                assert value >= 0.0


class TestReconciliation:
    def test_engine_report_reconciles(self):
        _db, engine, _view = _define()
        apply_price_updates(engine, engine.db, CONFIG)
        report = engine.maintain()["V"]
        assert report.predicted_counts is not None
        assert reconcile_report(report) == []

    def test_spj_update_lookups_are_exact(self):
        """Acceptance pin: index lookups on SPJ update rounds reconcile
        exactly, not just within tolerance."""
        _db, engine, _view = _define()
        apply_price_updates(engine, engine.db, CONFIG)
        report = engine.maintain()["V"]
        measured = report.phase_counts["view_update"].index_lookups
        predicted = report.predicted_counts["view_update"]["index_lookups"]
        assert float(measured) == predicted

    def test_aggregate_report_reconciles(self):
        _db, engine, _view = _define(build_view=build_aggregate_view)
        apply_price_updates(engine, engine.db, CONFIG)
        report = engine.maintain()["V"]
        assert reconcile_report(report) == []

    def test_sharded_reports_carry_predictions(self):
        for shards in (1, 2):
            _db, engine, _view = _define(ShardedEngine, shards=shards)
            apply_price_updates(engine, engine.db, CONFIG)
            report = engine.maintain()["V"]
            assert report.predicted_counts is not None
            assert reconcile_report(report) == []

    def test_reconcile_is_one_sided(self):
        predicted = {"view_update": {"index_lookups": 100.0}}
        under = {"view_update": {"index_lookups": 10.0}}
        assert reconcile_counts(predicted, under) == []

    def test_reconcile_flags_unexplained_work(self):
        predicted = {"view_update": {"index_lookups": 10.0}}
        measured = {"view_update": {"index_lookups": 100.0}}
        deviations = reconcile_counts(predicted, measured)
        assert len(deviations) == 1
        dev = deviations[0]
        assert isinstance(dev, CostDeviation)
        assert (dev.phase, dev.metric) == ("view_update", "index_lookups")
        assert "measured 100" in dev.render()

    def test_tolerance_band_absorbs_noise(self):
        predicted = {"view_update": {"index_lookups": 100.0}}
        measured = {"view_update": {"index_lookups": 120.0}}  # within 25%+4
        assert reconcile_counts(predicted, measured) == []

    def test_non_script_phases_are_ignored(self):
        predicted: dict = {}
        measured = {"populate": {"index_lookups": 9999.0}}
        assert reconcile_counts(predicted, measured) == []

    def test_injected_regression_raises_cost503(self):
        """Doctoring the measured counters past tolerance must produce a
        COST503 diagnostic through the analysis-report path."""
        from repro.analysis.cost import cost_diagnostics
        from repro.analysis.diagnostics import AnalysisReport

        _db, engine, _view = _define()
        apply_price_updates(engine, engine.db, CONFIG)
        report = engine.maintain()["V"]
        report.phase_counts["view_update"].index_lookups += 10_000
        analysis = AnalysisReport()
        deviations = cost_diagnostics(report, analysis)
        assert deviations
        assert any(d.rule_id == "COST503" for d in analysis.diagnostics)


class TestMinimalityLints:
    def test_devices_views_are_minimal(self):
        db = build_devices_database(CONFIG)
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_flat_view(db, CONFIG))
        report = analyze_generated(view.generated, db=db)
        assert not [
            d for d in report.diagnostics
            if d.rule_id in ("COST501", "COST502")
        ]

    def test_rewriter_never_ships_a_costlier_script(self):
        """COST501 regression (Q7): the shipped script used to trip the
        minimality lint against generator alternatives.  The comparison
        is per diff family (see dominated_by): an alternative that wins
        the summed working point by saving on families the workload may
        never produce, while losing on another, is not an improvement —
        the minimizer is strictly better on measured update rounds (see
        bench_fig10_bsma).  No alternative may dominate the shipped
        script."""
        from repro.analysis.cost import dominated_by
        from repro.core.generator import ScriptGenerator
        from repro.core.modlog import schema_instance_name
        from repro.core.schema_gen import generate_base_schemas
        from repro.workloads import BsmaConfig, build_bsma_database
        from repro.workloads.bsma import BSMA_QUERIES

        config = BsmaConfig(n_users=150)
        engine = IdIvmEngine(build_bsma_database(config))
        view = engine.define_view("Q7", BSMA_QUERIES["Q7"](engine.db, config))
        shipped = infer_script_cost(view.generated, engine.db)
        # Pin the chosen cost: seeded workload, deterministic inference.
        assert shipped.total() == pytest.approx(3197.62, abs=0.5)
        families = [
            schema_instance_name(s) for s in view.generated.base_schemas
        ]
        for optimize in (True, False):
            for policy in ("equi", "never"):
                alt = ScriptGenerator(
                    "Q7",
                    BSMA_QUERIES["Q7"](engine.db, config),
                    optimize=optimize,
                    cache_policy=policy,
                )
                generated = alt.generate(
                    generate_base_schemas(alt.plan, engine.db)
                )
                alt_model = infer_script_cost(generated, engine.db)
                assert not dominated_by(shipped, alt_model, families), (
                    optimize,
                    policy,
                )

    def test_cache_benefit_priced_consistently_at_define_time(self):
        """COST502 regression (Q7/Q10/Q11/Q18): the cached pipeline used
        to price above its no-cache alternative because the RETURNING
        cardinality was read off the cache's *contents* (a per-present-
        value fanout) while the no-cache variant derived it structurally
        — the cached variant inherited inflated cardinalities in every
        downstream statement, and cost selection dropped Q10's
        measured-beneficial cache (bench_fig10_bsma's Q10 speedup fell
        below the Q15 floor).  Cardinality must not depend on cache
        placement: the shipped scripts keep their intermediate caches
        and the lint stays quiet."""
        from repro.analysis.cost import dominated_by
        from repro.core.modlog import schema_instance_name
        from repro.workloads import BsmaConfig, build_bsma_database
        from repro.workloads.bsma import BSMA_QUERIES

        config = BsmaConfig(n_users=150)
        engine = IdIvmEngine(build_bsma_database(config))
        for name in ("Q7", "Q10", "Q11", "Q18"):
            view = engine.define_view(
                name, BSMA_QUERIES[name](engine.db, config)
            )
            kinds = {c.kind for c in view.generated.cache_specs}
            assert "intermediate" in kinds, name
            shipped = analyze_generated(view.generated, db=engine.db)
            assert not [
                d for d in shipped.diagnostics
                if d.rule_id in ("COST501", "COST502")
            ], name
        # The estimator consistency itself: the no-cache variant of Q10
        # must not dominate the cached one — the cache probe replaces a
        # multi-join recompute in the update family.
        view = engine.views["Q10"]
        model = infer_script_cost(view.generated, engine.db)
        from repro.core.generator import ScriptGenerator

        alt = ScriptGenerator(
            "Q10", BSMA_QUERIES["Q10"](engine.db, config), cache_policy="never"
        )
        generated = alt.generate(list(view.generated.base_schemas))
        alt_model = infer_script_cost(generated, engine.db)
        families = [
            schema_instance_name(s) for s in view.generated.base_schemas
        ]
        assert not dominated_by(model, alt_model, families)
        assert model.total() < alt_model.total()

    def test_dominated_by_requires_per_family_no_regression(self):
        """A candidate cheaper in total but costlier in one family does
        not dominate; one cheaper-or-equal everywhere does."""
        from repro.analysis.cost import dominated_by
        from repro.costmodel.symbolic import (
            CostExpr,
            ScriptCostModel,
            card_symbol,
            lookups,
        )

        def model(costs: dict[str, float]) -> ScriptCostModel:
            m = ScriptCostModel("V")
            for fam, per_row in costs.items():
                m.estimate(card_symbol(fam), 16.0)
                m.add(
                    f"probe {fam}",
                    "view_update",
                    lookups(CostExpr.var(card_symbol(fam)) * per_row),
                )
            return m

        fams = ["base_ins_t", "base_u_t"]
        current = model({"base_ins_t": 10.0, "base_u_t": 2.0})
        cheaper_total_worse_family = model(
            {"base_ins_t": 1.0, "base_u_t": 8.0}
        )
        assert not dominated_by(current, cheaper_total_worse_family, fams)
        cheaper_everywhere = model({"base_ins_t": 5.0, "base_u_t": 1.0})
        assert dominated_by(current, cheaper_everywhere, fams)
        # Strictly worse candidates never dominate.
        assert not dominated_by(current, model({"base_ins_t": 20.0, "base_u_t": 4.0}), fams)

    def test_cost_pass_is_registered(self):
        from repro.analysis.registry import pass_names

        assert "cost" in pass_names()

    def test_rules_exist(self):
        from repro.analysis.diagnostics import RULES

        for rule_id in ("COST501", "COST502", "COST503"):
            assert rule_id in RULES, rule_id


class TestChainParameters:
    def test_paper_configuration_agreement(self):
        """Satellite pin: the symbolic (a, p, g) path agrees with the
        measured path on the paper's devices configuration."""
        config = DevicesConfig(
            n_parts=200, n_devices=200, diff_size=20, fanout=10
        )
        db = build_devices_database(config)
        profile = estimate_chain_parameters(
            build_flat_view(db, config), db, "parts"
        )
        assert profile.g == 1.0
        engine = IdIvmEngine(build_devices_database(config))
        engine.define_view("V", build_flat_view(engine.db, config))
        apply_price_updates(engine, engine.db, config)
        report = engine.maintain()["V"]
        touched = sum(
            c.tuple_writes for ph, c in report.phase_counts.items()
            if ph != "__total__"
        )
        p_measured = touched / config.diff_size
        assert abs(profile.p - p_measured) / p_measured < 0.10

    def test_aggregate_profile_has_grouping_factor(self):
        db = build_devices_database(CONFIG)
        profile = estimate_chain_parameters(
            build_aggregate_view(db, CONFIG), db, "parts"
        )
        assert 0.0 < profile.g <= 1.0
        assert profile.fanouts  # climbed through at least one join

    def test_unknown_table_is_an_error(self):
        from repro.analysis.cost import CostInferenceError

        db = build_devices_database(CONFIG)
        with pytest.raises(CostInferenceError):
            estimate_chain_parameters(build_flat_view(db, CONFIG), db, "nope")


class TestCrosscheckCostLeg:
    def test_tolerance_deviation_is_informational(self):
        from repro.crosscheck.runner import _reconcile_cost

        class FakeReport:
            predicted_counts = {"view_update": {"index_lookups": 100.0}}
            phase_counts: dict = {}

        report = FakeReport()
        from repro.storage import AccessCounts

        counts = AccessCounts()
        counts.index_lookups = 140  # past tolerance, below the hard bar
        report.phase_counts = {"view_update": counts}
        sink: list = []
        divergence = _reconcile_cost(report, "minimized", 0, sink)
        assert divergence is None
        assert sink and "COST503" in sink[0]

    def test_egregious_excess_is_a_divergence(self):
        from repro.crosscheck.runner import _reconcile_cost
        from repro.storage import AccessCounts

        class FakeReport:
            predicted_counts = {"view_update": {"index_lookups": 100.0}}
            phase_counts: dict = {}

        report = FakeReport()
        counts = AccessCounts()
        counts.index_lookups = 100_000
        report.phase_counts = {"view_update": counts}
        divergence = _reconcile_cost(report, "minimized", 2, None)
        assert divergence is not None
        assert divergence.kind == "cost"
        assert divergence.batch == 2


class TestCli:
    def test_lint_cost_reconciles_all_views(self, capsys):
        from repro.cli import main

        assert main(["lint", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "devices/flat" in out
        assert "bsma/" in out
        assert "reconciled" in out

    def test_lint_shipped_views_free_of_minimality_warnings(self, capsys):
        """Acceptance pin: with the generator consulting the cost model,
        ``repro lint --cost`` raises no COST501/COST502 on any shipped
        view (the historical Q7/Q10/Q11/Q18 findings are fixed)."""
        from repro.cli import main

        assert main(["lint", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "COST501" not in out
        assert "COST502" not in out

    def test_lint_rule_filter(self, capsys):
        from repro.cli import main

        code = main(["lint", "--rule", "COST502"])
        out = capsys.readouterr().out
        assert code == 0  # warnings only
        assert "COST501" not in out

    def test_lint_unknown_rule_rejected(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rule", "BOGUS1"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_lint_min_severity_error_silences_warnings(self, capsys):
        from repro.cli import main

        assert main(["lint", "--min-severity", "error"]) == 0
        assert "COST5" not in capsys.readouterr().out

    def test_explain_cost_renders_model(self, capsys):
        from repro.cli import main

        sql = "SELECT pid, price FROM parts WHERE price > 15"
        assert main(["explain", "--sql", sql, "--cost"]) == 0
        out = capsys.readouterr().out
        assert "symbolic cost model" in out
        assert "card[" in out

    def test_explain_analyze_cost_reconciles_demo(self, capsys):
        from repro.cli import main

        sql = "SELECT pid, price FROM parts WHERE price > 15"
        assert main(["explain", "--sql", sql, "--analyze", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "predicted vs measured" in out
        assert "reconciliation: all phases within tolerance" in out
