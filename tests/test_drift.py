"""DriftMonitor: EWMA mechanics, engine wiring, COST504 diagnostics."""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisReport
from repro.analysis.cost import SCRIPT_PHASES, drift_diagnostics
from repro.core import IdIvmEngine
from repro.obs.drift import DriftMonitor
from repro.workloads import BsmaConfig, build_bsma_database, log_user_updates
from repro.workloads.bsma import BSMA_QUERIES

PHASE = SCRIPT_PHASES[-1]  # any single phase works for unit tests


def _feed(monitor, view, predicted, observed, rounds):
    for _ in range(rounds):
        monitor.update(
            view,
            {PHASE: {"tuple_writes": predicted}},
            {PHASE: {"tuple_writes": observed}},
        )


class TestDriftMonitor:
    def test_calibrated_model_never_alerts(self):
        monitor = DriftMonitor()
        _feed(monitor, "V", predicted=100, observed=100, rounds=10)
        assert monitor.alerts() == []
        assert monitor.ratio("V", "tuple_writes") == pytest.approx(1.0, rel=0.02)

    def test_over_prediction_alerts_after_min_rounds(self):
        monitor = DriftMonitor(min_rounds=3)
        _feed(monitor, "V", predicted=100, observed=20, rounds=2)
        assert monitor.alerts() == []  # not enough evidence yet
        _feed(monitor, "V", predicted=100, observed=20, rounds=1)
        alerts = monitor.alerts()
        assert len(alerts) == 1
        assert alerts[0].kind == "over_predicted"
        assert alerts[0].view == "V"
        assert "over-predicts" in alerts[0].render()

    def test_under_prediction_alerts(self):
        monitor = DriftMonitor(min_rounds=3)
        _feed(monitor, "V", predicted=50, observed=200, rounds=4)
        alerts = monitor.alerts()
        assert len(alerts) == 1
        assert alerts[0].kind == "under_predicted"

    def test_small_volumes_are_ignored(self):
        monitor = DriftMonitor(min_volume=8.0)
        _feed(monitor, "V", predicted=2, observed=0, rounds=10)
        assert monitor.states() == []
        assert monitor.alerts() == []

    def test_ewma_converges_to_new_regime(self):
        monitor = DriftMonitor(alpha=0.5)
        _feed(monitor, "V", predicted=100, observed=100, rounds=5)
        _feed(monitor, "V", predicted=100, observed=25, rounds=12)
        assert monitor.ratio("V", "tuple_writes") < 0.3

    def test_worst_ratio_picks_farthest_from_one(self):
        monitor = DriftMonitor()
        monitor.update(
            "V",
            {PHASE: {"tuple_writes": 100, "tuple_reads": 100}},
            {PHASE: {"tuple_writes": 90, "tuple_reads": 10}},
        )
        worst = monitor.worst_ratio("V")
        assert worst == pytest.approx(monitor.ratio("V", "tuple_reads"))

    def test_snapshot_is_json_shaped(self):
        import json

        monitor = DriftMonitor(min_rounds=1)
        _feed(monitor, "V", predicted=100, observed=10, rounds=2)
        snap = monitor.snapshot()
        json.dumps(snap)  # must not raise
        assert "V" in snap["views"]
        assert snap["alerts"]
        assert snap["thresholds"]["low"] == monitor.low


#: Seeded BSMA run shared by the acceptance tests below: fast, and big
#: enough that every cache-carrying view shows its true drift signature.
_CONFIG = BsmaConfig(n_users=200, friends_per_user=6, n_tweets=600)
_ROUNDS, _UPDATES = 4, 30


def _run_seeded_engine() -> IdIvmEngine:
    # cost_select=False: these tests pin the *dynamic* drift signature
    # of the shipped scripts themselves, independent of whatever the
    # define-time candidate selection would decide.
    db = build_bsma_database(_CONFIG)
    engine = IdIvmEngine(db, cost_select=False)
    for name, build in BSMA_QUERIES.items():
        engine.define_view(name, build(db, _CONFIG))
    for round_seed in range(_ROUNDS):
        log_user_updates(engine, db, _CONFIG, _UPDATES, round_seed=round_seed)
        engine.maintain()
    return engine


class TestEngineDrift:
    def test_over_predicting_views_surface_as_drift_alerts(self):
        """Views whose models still over-predict under the user-update
        workload (phantom diff families maintaining their caches) show
        up dynamically, while the calibrated Q*1 and Q10 stay within
        thresholds — Q10's model tracks its measured writes since the
        cache-independent cardinality fix (its ratio used to sit far
        below the low-water mark)."""
        engine = _run_seeded_engine()
        alerting = engine.drift.alerting_views()
        assert {"Q7", "Q11", "Q18"} <= alerting
        assert "Q*1" not in alerting
        assert "Q10" not in alerting
        for view in ("Q7", "Q11", "Q18"):
            ratio = engine.drift.ratio(view, "tuple_writes")
            assert ratio is not None and ratio < engine.drift.low
        q10 = engine.drift.ratio("Q10", "tuple_writes")
        assert q10 is not None and q10 >= engine.drift.low

    def test_drift_diagnostics_emit_cost504(self):
        engine = _run_seeded_engine()
        analysis = AnalysisReport()
        alerts = drift_diagnostics(engine.drift, analysis)
        assert alerts
        cost504 = [d for d in analysis.diagnostics if d.rule_id == "COST504"]
        assert cost504
        assert all(d.severity == "info" for d in cost504)
        locations = {d.location for d in cost504}
        for view in ("Q7", "Q11", "Q18"):
            assert f"view:{view}" in locations
        # informational: never counts as an error or warning
        assert not analysis.has_errors()
        assert analysis.warnings == []

    def test_maintenance_reports_carry_predictions(self):
        engine = _run_seeded_engine()
        report = engine.last_reports["Q7"]
        assert report.predicted_counts is not None
        assert any(
            phase in report.predicted_counts for phase in SCRIPT_PHASES
        )

    def test_worst_ratio_gauge_exported(self, _scoped_metrics):
        # engine rounds export drift.worst_ratio.<view> gauges into the
        # active registry (the autouse fixture scoped one).
        _run_seeded_engine()
        gauge = _scoped_metrics.gauge("drift.worst_ratio.Q7")
        assert gauge.value is not None
        assert gauge.value < 1.0
