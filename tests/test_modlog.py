"""Tests for the modification logger and i-diff instance generator
(paper Section 5)."""

import pytest

from repro.core.diffs import DELETE, INSERT, UPDATE
from repro.core.modlog import (
    ModificationLog,
    fold_log,
    populate_instances,
    schema_instance_name,
)
from repro.core.schema_gen import generate_base_schemas
from repro.errors import WorkloadError
from repro.storage import Database
from tests.conftest import build_view_v


@pytest.fixture
def db():
    database = Database()
    database.create_table("r", ("k", "a", "b"), ("k",))
    database.table("r").load([(1, 10, "x"), (2, 20, "y")])
    return database


class TestLogging:
    def test_modifications_hit_the_live_db(self, db):
        log = ModificationLog(db)
        log.insert("r", (3, 30, "z"))
        log.update("r", (1,), {"a": 11})
        log.delete("r", (2,))
        assert db.table("r").as_set() == {(1, 11, "x"), (3, 30, "z")}
        assert len(log.entries) == 3

    def test_logging_is_uncounted(self, db):
        log = ModificationLog(db)
        db.counters.reset()
        log.update("r", (1,), {"a": 99})
        assert db.counters.total.total == 0

    def test_update_captures_pre_row(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        assert log.entries[0].row == (1, 10, "x")

    def test_bad_operations_rejected(self, db):
        log = ModificationLog(db)
        with pytest.raises(WorkloadError):
            log.delete("r", (99,))
        with pytest.raises(WorkloadError):
            log.update("r", (99,), {"a": 1})
        with pytest.raises(WorkloadError):
            log.update("r", (1,), {"k": 5})

    def test_take_drains(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        assert len(log.take()) == 1
        assert log.take() == []


class TestFolding:
    def test_update_then_update_merges(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        log.update("r", (1,), {"b": "q"})
        net = fold_log(log.take(), db)["r"]
        change = net[(1,)]
        assert change.kind == UPDATE
        assert change.pre_row == (1, 10, "x")
        assert change.post_row == (1, 11, "q")

    def test_insert_then_update_is_insert(self, db):
        log = ModificationLog(db)
        log.insert("r", (3, 30, "z"))
        log.update("r", (3,), {"a": 31})
        net = fold_log(log.take(), db)["r"]
        change = net[(3,)]
        assert change.kind == INSERT
        assert change.post_row == (3, 31, "z")

    def test_insert_then_delete_vanishes(self, db):
        log = ModificationLog(db)
        log.insert("r", (3, 30, "z"))
        log.delete("r", (3,))
        net = fold_log(log.take(), db)
        assert (3,) not in net.get("r", {})

    def test_update_then_delete_is_delete_with_original_pre(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        log.delete("r", (1,))
        change = fold_log(log.take(), db)["r"][(1,)]
        assert change.kind == DELETE
        assert change.pre_row == (1, 10, "x")

    def test_delete_then_reinsert_is_update(self, db):
        log = ModificationLog(db)
        log.delete("r", (1,))
        log.insert("r", (1, 99, "x"))
        change = fold_log(log.take(), db)["r"][(1,)]
        assert change.kind == UPDATE
        assert change.pre_row == (1, 10, "x")
        assert change.post_row == (1, 99, "x")

    def test_delete_then_identical_reinsert_vanishes(self, db):
        log = ModificationLog(db)
        log.delete("r", (1,))
        log.insert("r", (1, 10, "x"))
        net = fold_log(log.take(), db)
        assert (1,) not in net.get("r", {})

    def test_noop_update_vanishes(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 10})
        net = fold_log(log.take(), db)
        assert (1,) not in net.get("r", {})

    def test_update_cycle_vanishes(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        log.update("r", (1,), {"a": 10})
        net = fold_log(log.take(), db)
        assert (1,) not in net.get("r", {})


class TestInstanceGeneration:
    def test_routing_into_schemas(self, running_example_db):
        plan = build_view_v(running_example_db)
        from repro.core import annotate_plan

        schemas = generate_base_schemas(annotate_plan(plan), running_example_db)
        log = ModificationLog(running_example_db)
        log.update("parts", ("P1",), {"price": 11})
        log.insert("devices", ("D4", "phone"))
        log.delete("devices_parts", ("D1", "P2"))
        instances = populate_instances(schemas, log.take(), running_example_db)
        non_empty = {name for name, diff in instances.items() if len(diff)}
        assert "base_u_parts__price" in non_empty
        assert "base_ins_devices" in non_empty
        assert "base_del_devices_parts" in non_empty
        # Every schema gets an (often empty) instance.
        assert len(instances) == len(schemas)

    def test_update_routed_to_minimal_covering_schema(self, db):
        """Each net tuple-update lands in exactly ONE schema: the
        smallest whose post attributes cover the modified set (splitting
        a change across instances would entangle them)."""
        from repro.core.diffs import update_schema_for

        schema_a = update_schema_for(db.table("r").schema, ("a",))
        schema_b = update_schema_for(db.table("r").schema, ("b",))
        schema_ab = update_schema_for(db.table("r").schema, ("a", "b"))
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 11})
        log.update("r", (2,), {"a": 21, "b": "q"})
        instances = populate_instances(
            [schema_a, schema_b, schema_ab], log.take(), db
        )
        assert len(instances[schema_instance_name(schema_a)]) == 1
        assert len(instances[schema_instance_name(schema_b)]) == 0
        assert len(instances[schema_instance_name(schema_ab)]) == 1

    def test_uncovered_update_raises(self, db):
        from repro.core.diffs import update_schema_for
        from repro.errors import DiffError

        schema_a = update_schema_for(db.table("r").schema, ("a",))
        log = ModificationLog(db)
        log.update("r", (1,), {"b": "zzz"})
        import pytest as _pytest

        with _pytest.raises(DiffError):
            populate_instances([schema_a], log.take(), db)

    def test_instance_names_are_stable(self, db):
        from repro.core.diffs import delete_schema_for, insert_schema_for

        assert schema_instance_name(insert_schema_for(db.table("r").schema)) == (
            "base_ins_r"
        )
        assert schema_instance_name(delete_schema_for(db.table("r").schema)) == (
            "base_del_r"
        )


class TestFoldLogProperty:
    """Property test: folding the log and replaying the net changes must
    reach exactly the state the raw log produced — across random
    insert/update/delete interleavings per key, including the fold-table
    edge cases (insert∘delete, delete∘insert-equal, update-back-to-
    original)."""

    N_KEYS = 6
    N_OPS = 40
    N_TRIALS = 60

    def _fresh_db(self):
        database = Database()
        database.create_table("r", ("k", "a", "b"), ("k",))
        database.table("r").load(
            [(k, k * 10, "x") for k in range(0, self.N_KEYS, 2)]
        )
        return database

    def _random_ops(self, rng):
        """A random but always-legal op sequence, tracked per key."""
        live = {k for k in range(0, self.N_KEYS, 2)}
        rows = {k: (k, k * 10, "x") for k in live}
        ops = []
        for _ in range(self.N_OPS):
            k = rng.randrange(self.N_KEYS)
            if k in live:
                choice = rng.choice(("update", "update_back", "delete"))
                if choice == "delete":
                    ops.append(("delete", k, None))
                    live.discard(k)
                    rows.pop(k)
                elif choice == "update_back":
                    # Re-assert current values: a net no-op update.
                    _, a, b = rows[k]
                    ops.append(("update", k, {"a": a, "b": b}))
                else:
                    changes = {}
                    if rng.random() < 0.8:
                        changes["a"] = rng.randrange(100)
                    if not changes or rng.random() < 0.5:
                        changes["b"] = rng.choice("xyz")
                    ops.append(("update", k, changes))
                    new = list(rows[k])
                    for col, val in changes.items():
                        new[{"a": 1, "b": 2}[col]] = val
                    rows[k] = tuple(new)
            else:
                # Re-insert sometimes equals the deleted row exactly
                # (the delete∘insert-equal fold case).
                row = (
                    (k, k * 10, "x")
                    if rng.random() < 0.4
                    else (k, rng.randrange(100), rng.choice("xyz"))
                )
                ops.append(("insert", k, row))
                live.add(k)
                rows[k] = row
        return ops

    def test_fold_matches_raw_replay(self):
        import random

        rng = random.Random(20260805)
        for _ in range(self.N_TRIALS):
            db = self._fresh_db()
            pre_rows = db.table("r").as_set()
            log = ModificationLog(db)
            for op, k, payload in self._random_ops(rng):
                if op == "insert":
                    log.insert("r", payload)
                elif op == "delete":
                    log.delete("r", (k,))
                else:
                    log.update("r", (k,), payload)
            entries = log.take()
            net = fold_log(entries, db)

            # Replay the folded net changes onto the pre-state.
            replayed = dict()
            for row in pre_rows:
                replayed[(row[0],)] = row
            for key, change in net.get("r", {}).items():
                if change.kind == INSERT:
                    assert key not in replayed
                    assert change.pre_row is None
                    replayed[key] = change.post_row
                elif change.kind == DELETE:
                    assert replayed.pop(key) == change.pre_row
                    assert change.post_row is None
                else:
                    assert replayed[key] == change.pre_row
                    assert change.pre_row != change.post_row
                    replayed[key] = change.post_row
            assert set(replayed.values()) == db.table("r").as_set()


class TestNoOpUpdateFolding:
    """An UPDATE whose new values equal the old ones is a no-op: it must
    not survive into the log (count-neutrality — the next maintenance
    round must cost exactly what an empty round costs)."""

    def test_same_value_update_is_not_logged(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 10})  # a is already 10
        assert log.entries == []
        assert db.table("r").as_set() == {(1, 10, "x"), (2, 20, "y")}

    def test_multi_column_noop_update_is_not_logged(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 10, "b": "x"})
        assert log.entries == []

    def test_partial_noop_update_is_logged(self, db):
        log = ModificationLog(db)
        log.update("r", (1,), {"a": 10, "b": "q"})  # b actually changes
        assert len(log.entries) == 1
        net = fold_log(log.take(), db)["r"]
        assert net[(1,)].post_row == (1, 10, "q")

    def test_fold_log_still_guards_hand_built_logs(self, db):
        from repro.core.modlog import LoggedModification

        entries = [
            LoggedModification(
                UPDATE, "r", (1,), row=(1, 10, "x"), changes={"a": 10}
            )
        ]
        assert fold_log(entries, db) == {"r": {}}

    def test_noop_update_round_is_count_neutral(self, db):
        from repro.core import IdIvmEngine
        from repro.expr import col, lit
        from repro.algebra import scan, where

        engine = IdIvmEngine(db)
        view = engine.define_view("V", where(scan(db, "r"), col("a").le(lit(50))))
        empty_report = engine.maintain()["V"]
        engine.log.update("r", (1,), {"a": 10})  # no-op
        noop_report = engine.maintain()["V"]
        assert noop_report.total_cost == empty_report.total_cost == 0
        assert view.table.as_set() == {(1, 10, "x"), (2, 20, "y")}
