"""Tests for database snapshots and the ad-hoc query API."""

import pytest

from repro import query
from repro.errors import SchemaError
from repro.storage import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)


class TestSnapshot:
    def test_round_trip(self, running_example_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        restored = load_database(path)
        assert restored.table_names() == running_example_db.table_names()
        for name in restored.table_names():
            assert (
                restored.table(name).as_set()
                == running_example_db.table(name).as_set()
            )
            assert (
                restored.table(name).schema
                == running_example_db.table(name).schema
            )
        assert len(restored.foreign_keys) == len(running_example_db.foreign_keys)

    def test_restored_database_maintains_views(self, running_example_db, tmp_path):
        from repro.core import IdIvmEngine
        from tests.conftest import build_view_v_prime

        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        db = load_database(path)
        engine = IdIvmEngine(db)
        view = engine.define_view("Vp", build_view_v_prime(db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        assert view.table.as_set() == {("D1", 31), ("D2", 11)}

    def test_rows_restored_as_tuples(self, running_example_db):
        payload = database_to_dict(running_example_db)
        restored = database_from_dict(payload)
        row = next(iter(restored.table("parts").rows_uncounted()))
        assert isinstance(row, tuple)

    def test_unknown_format_rejected(self):
        with pytest.raises(SchemaError):
            database_from_dict({"format": 99, "tables": []})


class TestAdHocQuery:
    def test_query_returns_relation(self, running_example_db):
        result = query(
            running_example_db,
            "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
            "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
            "GROUP BY did",
        )
        assert result.columns == ("did", "cost")
        assert result.as_set() == {("D1", 30), ("D2", 10)}

    def test_query_counts_accesses(self, running_example_db):
        running_example_db.counters.reset()
        query(running_example_db, "SELECT * FROM parts")
        assert running_example_db.counters.total.tuple_reads == 2


class TestSnapshotIndexes:
    """Restore must rebuild secondary indexes and reset counters —
    stale index entries after restore would silently corrupt the
    diff-driven lookups the ∆-scripts rely on."""

    def _db(self):
        from repro.storage import Database

        db = Database()
        t = db.create_table("parts", ("pid", "price", "vendor"), ("pid",))
        t.load([(1, 10, "acme"), (2, 20, "acme"), (3, 30, "bolt")])
        t.create_index(("vendor",))
        return db

    def test_round_trip_rebuilds_secondary_indexes(self, tmp_path):
        db = self._db()
        path = tmp_path / "db.json"
        save_database(db, path)
        # Mutations after the snapshot must not leak into the restore.
        db.table("parts").delete_uncounted((1,))
        db.table("parts").insert_uncounted((4, 40, "bolt"))
        restored = load_database(path)
        t = restored.table("parts")
        assert t.has_index(("vendor",))
        # Probe through the secondary index: pre-mutation contents only.
        assert sorted(t.lookup(("vendor",), ("acme",))) == [
            (1, 10, "acme"),
            (2, 20, "acme"),
        ]
        assert t.lookup(("vendor",), ("bolt",)) == [(3, 30, "bolt")]
        # The probe used the rebuilt index, not a counted full scan.
        assert restored.counters.total.index_lookups == 2
        assert restored.counters.total.tuple_reads == 3

    def test_restore_resets_counters(self, tmp_path):
        db = self._db()
        list(db.table("parts").scan())  # dirty the live counters
        assert db.counters.total.total > 0
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = load_database(path)
        assert restored.counters.total.total == 0
        assert restored.counters.phases == {}

    def test_auto_index_setting_round_trips(self):
        from repro.storage import Database

        db = Database(auto_index=False)
        db.create_table("t", ("k", "v"), ("k",))
        restored = database_from_dict(database_to_dict(db))
        assert restored.auto_index is False
        assert restored.table("t").auto_index is False

    def test_legacy_snapshot_without_index_fields_loads(self):
        db = self._db()
        payload = database_to_dict(db)
        payload.pop("auto_index")
        for spec in payload["tables"]:
            spec.pop("indexes")
        restored = database_from_dict(payload)
        assert restored.table("parts").as_set() == db.table("parts").as_set()
