"""Tests for database snapshots and the ad-hoc query API."""

import pytest

from repro import query
from repro.errors import SchemaError
from repro.storage import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)


class TestSnapshot:
    def test_round_trip(self, running_example_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        restored = load_database(path)
        assert restored.table_names() == running_example_db.table_names()
        for name in restored.table_names():
            assert (
                restored.table(name).as_set()
                == running_example_db.table(name).as_set()
            )
            assert (
                restored.table(name).schema
                == running_example_db.table(name).schema
            )
        assert len(restored.foreign_keys) == len(running_example_db.foreign_keys)

    def test_restored_database_maintains_views(self, running_example_db, tmp_path):
        from repro.core import IdIvmEngine
        from tests.conftest import build_view_v_prime

        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        db = load_database(path)
        engine = IdIvmEngine(db)
        view = engine.define_view("Vp", build_view_v_prime(db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        assert view.table.as_set() == {("D1", 31), ("D2", 11)}

    def test_rows_restored_as_tuples(self, running_example_db):
        payload = database_to_dict(running_example_db)
        restored = database_from_dict(payload)
        row = next(iter(restored.table("parts").rows_uncounted()))
        assert isinstance(row, tuple)

    def test_unknown_format_rejected(self):
        with pytest.raises(SchemaError):
            database_from_dict({"format": 99, "tables": []})


class TestAdHocQuery:
    def test_query_returns_relation(self, running_example_db):
        result = query(
            running_example_db,
            "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
            "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
            "GROUP BY did",
        )
        assert result.columns == ("did", "cost")
        assert result.as_set() == {("D1", 30), ("D2", 10)}

    def test_query_counts_accesses(self, running_example_db):
        running_example_db.counters.reset()
        query(running_example_db, "SELECT * FROM parts")
        assert running_example_db.counters.total.tuple_reads == 2
