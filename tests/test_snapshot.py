"""Tests for database snapshots and the ad-hoc query API."""

import pytest

from repro import query
from repro.errors import SchemaError
from repro.storage import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)


class TestSnapshot:
    def test_round_trip(self, running_example_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        restored = load_database(path)
        assert restored.table_names() == running_example_db.table_names()
        for name in restored.table_names():
            assert (
                restored.table(name).as_set()
                == running_example_db.table(name).as_set()
            )
            assert (
                restored.table(name).schema
                == running_example_db.table(name).schema
            )
        assert len(restored.foreign_keys) == len(running_example_db.foreign_keys)

    def test_restored_database_maintains_views(self, running_example_db, tmp_path):
        from repro.core import IdIvmEngine
        from tests.conftest import build_view_v_prime

        path = tmp_path / "db.json"
        save_database(running_example_db, path)
        db = load_database(path)
        engine = IdIvmEngine(db)
        view = engine.define_view("Vp", build_view_v_prime(db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        assert view.table.as_set() == {("D1", 31), ("D2", 11)}

    def test_rows_restored_as_tuples(self, running_example_db):
        payload = database_to_dict(running_example_db)
        restored = database_from_dict(payload)
        row = next(iter(restored.table("parts").rows_uncounted()))
        assert isinstance(row, tuple)

    def test_unknown_format_rejected(self):
        with pytest.raises(SchemaError):
            database_from_dict({"format": 99, "tables": []})


class TestAdHocQuery:
    def test_query_returns_relation(self, running_example_db):
        result = query(
            running_example_db,
            "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
            "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
            "GROUP BY did",
        )
        assert result.columns == ("did", "cost")
        assert result.as_set() == {("D1", 30), ("D2", 10)}

    def test_query_counts_accesses(self, running_example_db):
        running_example_db.counters.reset()
        query(running_example_db, "SELECT * FROM parts")
        assert running_example_db.counters.total.tuple_reads == 2


class TestSnapshotIndexes:
    """Restore must rebuild secondary indexes and reset counters —
    stale index entries after restore would silently corrupt the
    diff-driven lookups the ∆-scripts rely on."""

    def _db(self):
        from repro.storage import Database

        db = Database()
        t = db.create_table("parts", ("pid", "price", "vendor"), ("pid",))
        t.load([(1, 10, "acme"), (2, 20, "acme"), (3, 30, "bolt")])
        t.create_index(("vendor",))
        return db

    def test_round_trip_rebuilds_secondary_indexes(self, tmp_path):
        db = self._db()
        path = tmp_path / "db.json"
        save_database(db, path)
        # Mutations after the snapshot must not leak into the restore.
        db.table("parts").delete_uncounted((1,))
        db.table("parts").insert_uncounted((4, 40, "bolt"))
        restored = load_database(path)
        t = restored.table("parts")
        assert t.has_index(("vendor",))
        # Probe through the secondary index: pre-mutation contents only.
        assert sorted(t.lookup(("vendor",), ("acme",))) == [
            (1, 10, "acme"),
            (2, 20, "acme"),
        ]
        assert t.lookup(("vendor",), ("bolt",)) == [(3, 30, "bolt")]
        # The probe used the rebuilt index, not a counted full scan.
        assert restored.counters.total.index_lookups == 2
        assert restored.counters.total.tuple_reads == 3

    def test_restore_resets_counters(self, tmp_path):
        db = self._db()
        list(db.table("parts").scan())  # dirty the live counters
        assert db.counters.total.total > 0
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = load_database(path)
        assert restored.counters.total.total == 0
        assert restored.counters.phases == {}

    def test_auto_index_setting_round_trips(self):
        from repro.storage import Database

        db = Database(auto_index=False)
        db.create_table("t", ("k", "v"), ("k",))
        restored = database_from_dict(database_to_dict(db))
        assert restored.auto_index is False
        assert restored.table("t").auto_index is False

    def test_legacy_snapshot_without_index_fields_loads(self):
        db = self._db()
        payload = database_to_dict(db)
        payload.pop("auto_index")
        for spec in payload["tables"]:
            spec.pop("indexes")
        restored = database_from_dict(payload)
        assert restored.table("parts").as_set() == db.table("parts").as_set()


class TestPartitionedSnapshot:
    """Snapshot/restore of a hash-partitioned database: rows re-route to
    their shards, per-shard secondary indexes are rebuilt from rows, and
    every per-shard counter restarts at zero."""

    def _pdb(self, n_shards=4):
        from repro.storage import Database, partition_database

        db = Database()
        t = db.create_table("parts", ("pid", "price", "vendor"), ("pid",))
        t.load([(i, 10 * i, "acme" if i % 2 else "bolt") for i in range(1, 9)])
        t.create_index(("vendor",))
        return partition_database(db, n_shards)

    def test_round_trip_preserves_rows_and_sharding(self, tmp_path):
        from repro.storage import load_database, save_database

        pdb = self._pdb()
        path = tmp_path / "pdb.json"
        save_database(pdb, path)
        restored = load_database(path)
        assert restored.n_shards == pdb.n_shards
        assert restored.auto_index == pdb.auto_index
        assert restored.table("parts").as_set() == pdb.table("parts").as_set()
        # Rows land on the same shards (shard_of is stable across runs).
        for i in range(pdb.n_shards):
            assert (
                restored.table("parts").shard(i).as_set()
                == pdb.table("parts").shard(i).as_set()
            )

    def test_restore_rebuilds_per_shard_secondary_indexes(self, tmp_path):
        from repro.storage import load_database, save_database

        pdb = self._pdb()
        path = tmp_path / "pdb.json"
        save_database(pdb, path)
        # Post-snapshot mutations must not leak into the restore.
        pdb.table("parts").delete_key((1,))
        restored = load_database(path)
        part = restored.table("parts")
        for shard in part.shards:
            assert shard.has_index(("vendor",))
        rows = part.lookup(("vendor",), ("acme",))
        assert sorted(rows) == [(1, 10, "acme"), (3, 30, "acme"),
                                (5, 50, "acme"), (7, 70, "acme")]
        # The broadcast probe paid one index lookup per shard — not a
        # counted full scan, which a missing index would have forced.
        combined = part.combined_counts()
        assert combined.index_lookups == part.n_shards
        assert combined.tuple_reads == 4

    def test_restore_resets_per_shard_counters(self):
        from repro.storage import database_from_dict, database_to_dict

        pdb = self._pdb()
        list(pdb.table("parts").scan())  # dirty every shard's counters
        assert pdb.combined_counts().total > 0
        restored = database_from_dict(database_to_dict(pdb))
        assert restored.combined_counts().total == 0
        for shard in restored.table("parts").shards:
            assert shard.counters.total.total == 0
        assert restored.critical_path() == 0

    def test_plain_snapshot_still_restores_plain_database(self):
        from repro.storage import Database, database_from_dict, database_to_dict

        db = Database()
        db.create_table("t", ("k", "v"), ("k",))
        restored = database_from_dict(database_to_dict(db))
        assert isinstance(restored, Database)
