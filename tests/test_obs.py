"""The observability layer: counters, spans, metrics, traces.

The load-bearing property is *exact reconciliation*: the access-count
deltas captured by phase spans must sum to precisely what the engine
reports in ``MaintenanceReport.phase_counts``, and enabling tracing must
not change any counted cost.
"""

from __future__ import annotations

import threading

import pytest

from repro.baselines import TupleIvmEngine
from repro.core import IdIvmEngine
from repro.obs import metrics
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    current_recorder,
    current_span,
    enabled,
    phase_totals,
    recording,
    span,
    validate_trace,
    write_trace,
)
from repro.storage import AccessCounts, CounterSet
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
)

CONFIG = DevicesConfig(n_parts=120, n_devices=120, diff_size=25)


class TestCounterPhases:
    def test_innermost_phase_wins(self):
        counters = CounterSet()
        with counters.phase("outer"):
            counters.count_tuple_read()
            with counters.phase("inner"):
                counters.count_tuple_read(2)
                counters.count_index_lookup()
            counters.count_tuple_write()
        assert counters.phases["outer"].tuple_reads == 1
        assert counters.phases["outer"].tuple_writes == 1
        assert counters.phases["inner"].tuple_reads == 2
        assert counters.phases["inner"].index_lookups == 1
        assert "default" not in counters.phases

    def test_grand_total_invariant(self):
        counters = CounterSet()
        counters.count_tuple_read()
        with counters.phase("a"):
            counters.count_index_lookup(3)
            with counters.phase("b"):
                counters.count_tuple_write(2)
            with counters.phase("a"):
                counters.count_tuple_read(4)
        by_phase = AccessCounts()
        for bucket in counters.phases.values():
            by_phase.add(bucket)
        assert by_phase.as_dict() == counters.total.as_dict()
        assert counters.total.total == 10

    def test_reset_keeps_phase_stack(self):
        counters = CounterSet()
        with counters.phase("x"):
            counters.count_tuple_read()
            counters.reset()
            assert counters.total.total == 0
            assert counters.phases == {}
            assert counters.current_phase == "x"
            counters.count_tuple_read()
        assert counters.phases["x"].tuple_reads == 1
        assert counters.total.tuple_reads == 1


class TestSpans:
    def test_disabled_by_default(self):
        assert not enabled()
        assert current_recorder() is None
        with span("anything", kind="engine", n=1) as sp:
            sp.set(ignored=True)  # null span: no-op
            assert sp.counts is None
        assert current_span() is None

    def test_recording_installs_and_restores(self):
        outer = SpanRecorder()
        with recording(outer) as rec:
            assert rec is outer
            assert enabled() and current_recorder() is outer
            with recording() as inner:
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is None

    def test_tree_structure_and_walk(self):
        with recording() as rec:
            with span("root", kind="engine") as root:
                with span("child-a"):
                    with span("leaf"):
                        pass
                with span("child-b"):
                    pass
        assert rec.roots == [root]
        assert [sp.name for sp in root.walk()] == [
            "root", "child-a", "leaf", "child-b",
        ]
        assert [sp.parent_id for sp in rec.spans] == [None, 1, 2, 1]
        assert root.duration >= 0.0
        assert rec.find(kind="engine") == [root]

    def test_counted_span_captures_total_delta(self):
        counters = CounterSet()
        counters.count_tuple_read(5)  # pre-existing counts are excluded
        with recording():
            with span("work", counters=counters) as outer:
                counters.count_index_lookup(2)
                with span("sub", counters=counters) as sub:
                    counters.count_tuple_write(3)
        assert outer.counts.as_dict()["total"] == 5
        assert sub.counts.total == 3
        # Exclusive cost subtracts the counted child.
        assert outer.self_counts().total == 2

    def test_phase_of_captures_bucket_delta(self):
        counters = CounterSet()
        with recording():
            with span("p", counters=counters, phase_of="view_update") as sp:
                with counters.phase("view_diff"):
                    counters.count_tuple_read(7)  # other bucket: invisible
                    with counters.phase("view_update"):
                        counters.count_tuple_write(2)
        assert sp.counts.as_dict() == {
            "index_lookups": 0, "tuple_reads": 0, "tuple_writes": 2,
            "index_maintenance": 0, "total": 2,
        }

    def test_attrs_and_dict_forms(self):
        with recording():
            with span("x", kind="stmt", phase="view_diff") as sp:
                sp.set(rows=3)
        record = sp.as_dict()
        assert record["attrs"] == {"phase": "view_diff", "rows": 3}
        assert record["counts"] is None
        tree = sp.tree_dict()
        assert tree["children"] == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1, 2, 3):
            reg.histogram("h").observe(v)
        out = reg.as_dict()
        assert out["c"]["value"] == 5
        assert out["g"]["value"] == 2.5
        assert out["h"]["count"] == 3
        assert out["h"]["sum"] == 6
        assert out["h"]["min"] == 1 and out["h"]["max"] == 3
        assert out["h"]["mean"] == 2.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.reset()
        assert reg.counter("c").as_dict()["value"] == 0


class TestMetricsConcurrency:
    """Regression pins for the lost-increment and scoped-swap races."""

    def test_counter_and_histogram_are_lossless_under_contention(self):
        # Pre-fix, Counter.inc was a read-modify-write on one shared int
        # and this hammer reliably lost increments.  Per-thread cells
        # (folded on read, like ConcurrentLogHistogram) must be exact.
        reg = MetricsRegistry()
        counter = reg.counter("hammer.count")
        hist = reg.histogram("hammer.hist")
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(2.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = n_threads * per_thread
        assert counter.value == expected
        assert hist.count == expected
        assert hist.total == expected * 2.0
        assert hist.min == hist.max == 2.0

    def test_counter_folds_cells_of_dead_threads(self):
        reg = MetricsRegistry()
        counter = reg.counter("dead.threads")
        threads = [
            threading.Thread(target=lambda: counter.inc(10)) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counter.inc(2)  # main thread's own cell on top
        assert counter.value == 42

    def test_scoped_swap_is_safe_against_helper_threads(self):
        # Pre-fix, scoped() read-modify-wrote the module-global registry
        # unguarded; a daemon thread (DemoLoop, serve handlers) calling
        # the module helpers mid-swap could observe a torn swap or leak
        # increments into a foreign registry after restore.
        stop = threading.Event()
        errors: list[BaseException] = []

        def chatter():
            while not stop.is_set():
                try:
                    metrics.counter("race.outer").inc()
                    metrics.histogram("race.hist").observe(1.0)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        thread = threading.Thread(target=chatter, daemon=True)
        thread.start()
        try:
            for _ in range(400):
                with metrics.scoped() as inner:
                    inner.counter("race.inner").inc()
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert not errors
        # the helper still works after all those swap/restore cycles
        metrics.counter("race.after").inc(3)
        assert metrics.counter("race.after").value == 3


def _run_round(engine_cls, recorder=None):
    db = build_devices_database(CONFIG)
    engine = engine_cls(db)
    engine.define_view("V", build_aggregate_view(db, CONFIG))
    apply_price_updates(engine, db, CONFIG)
    if recorder is None:
        return engine.maintain()["V"]
    with recording(recorder):
        return engine.maintain()["V"]


@pytest.mark.parametrize("engine_cls", [IdIvmEngine, TupleIvmEngine])
class TestReconciliation:
    def test_phase_spans_match_engine_totals(self, engine_cls):
        recorder = SpanRecorder()
        report = _run_round(engine_cls, recorder)
        spans = recorder.find(kind="phase")
        assert spans, "maintenance round recorded no phase spans"
        summed: dict[str, AccessCounts] = {}
        for sp in spans:
            summed.setdefault(sp.attrs["phase"], AccessCounts()).add(sp.counts)
        engine_counts = {
            name: counts
            for name, counts in report.phase_counts.items()
            if name != "__total__"
        }
        for name, counts in engine_counts.items():
            if counts.total == 0:
                continue
            assert summed[name].as_dict() == counts.as_dict(), name
        for name, counts in summed.items():
            assert counts.total == engine_counts.get(name, AccessCounts()).total

    def test_tracing_is_count_neutral(self, engine_cls):
        baseline = _run_round(engine_cls)
        traced = _run_round(engine_cls, SpanRecorder())
        assert traced.total_cost == baseline.total_cost
        assert {
            n: c.as_dict() for n, c in traced.phase_counts.items()
        } == {n: c.as_dict() for n, c in baseline.phase_counts.items()}


class TestTraceFile:
    def test_write_validate_and_phase_totals(self, tmp_path):
        recorder = SpanRecorder()
        report = _run_round(IdIvmEngine, recorder)
        path = tmp_path / "round.jsonl"
        n = write_trace(recorder, str(path))
        assert n == len(recorder.spans)
        assert validate_trace(str(path)) == []
        totals = phase_totals(sp.as_dict() for sp in recorder.spans)
        for name, counts in totals.items():
            if name not in report.phase_counts:
                # A phase can run without counting anything (e.g. a
                # cache_diff that is statically empty).
                assert counts.total == 0, name
                continue
            assert counts.as_dict() == report.phase_counts[name].as_dict()


class TestTraceReconcile:
    """reconcile_trace + the ``python -m repro.obs.trace`` validator."""

    def _trace_records(self, tmp_path, engine_cls=IdIvmEngine):
        from repro.obs import load_trace

        recorder = SpanRecorder()
        _run_round(engine_cls, recorder)
        path = tmp_path / "round.jsonl"
        write_trace(recorder, str(path))
        return path, load_trace(str(path))

    def test_real_round_reconciles(self, tmp_path):
        from repro.obs import reconcile_trace

        _, records = self._trace_records(tmp_path)
        assert reconcile_trace(records) == []

    def test_sharded_round_reconciles(self, tmp_path):
        """Shard workers' phase spans nest below shard spans; the view
        subtree sum must still match the stamped (merged) counts."""
        from repro.core import ShardedEngine
        from repro.obs import reconcile_trace

        _, records = self._trace_records(
            tmp_path, lambda db: ShardedEngine(db, shards=2)
        )
        assert reconcile_trace(records) == []

    def test_detects_corrupted_phase_counts(self, tmp_path):
        from repro.obs import reconcile_trace

        _, records = self._trace_records(tmp_path)
        phase_spans = [
            r
            for r in records
            if r.get("kind") == "phase" and (r.get("counts") or {}).get("total")
        ]
        assert phase_spans
        phase_spans[0]["counts"]["tuple_reads"] += 7
        phase_spans[0]["counts"]["total"] += 7
        errors = reconcile_trace(records)
        assert errors
        assert "does not reconcile" in errors[0]

    def test_detects_phantom_phase(self, tmp_path):
        from repro.obs import reconcile_trace

        _, records = self._trace_records(tmp_path)
        view_spans = [r for r in records if r.get("kind") == "view"]
        assert view_spans
        del view_spans[0]["attrs"]["phase_counts"]["view_update"]
        errors = reconcile_trace(records)
        assert errors
        assert "stamps no such phase" in errors[0]

    def test_cli_ok_and_summary(self, tmp_path, capsys):
        from repro.obs.trace import main

        path, _ = self._trace_records(tmp_path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok (" in out

        assert main([str(path), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "p95(ms)" in out
        assert "phase" in out

    def test_cli_rejects_malformed_trace(self, tmp_path, capsys):
        from repro.obs.trace import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": 3}\n')
        assert main([str(bad)]) == 1
        assert capsys.readouterr().err

    def test_cli_rejects_non_reconciling_trace(self, tmp_path, capsys):
        import json

        from repro.obs.trace import main

        path, records = self._trace_records(tmp_path)
        for record in records:
            if record.get("kind") == "phase" and (record.get("counts") or {}).get(
                "total"
            ):
                record["counts"]["tuple_writes"] += 3
                record["counts"]["total"] += 3
                break
        doctored = tmp_path / "doctored.jsonl"
        with doctored.open("w") as fh:
            fh.write(
                json.dumps(
                    {
                        "type": "meta",
                        "schema": "repro.trace",
                        "version": 1,
                        "spans": len(records),
                    }
                )
                + "\n"
            )
            for record in records:
                fh.write(json.dumps(record) + "\n")
        assert main([str(doctored)]) == 1
        err = capsys.readouterr().err
        assert "does not reconcile" in err
