"""Shared fixtures: the paper's running example (Figures 1-2)."""

import pytest

from repro.algebra import natural_join, scan, where
from repro.expr import col, lit
from repro.storage import Database


@pytest.fixture
def running_example_db() -> Database:
    """The exact instance of Figure 2 (initial database instance DB)."""
    db = Database()
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load(
        [("D1", "phone"), ("D2", "phone"), ("D3", "tablet")]
    )
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load(
        [("D1", "P1"), ("D2", "P1"), ("D1", "P2")]
    )
    db.add_foreign_key("devices_parts", ("did",), "devices")
    db.add_foreign_key("devices_parts", ("pid",), "parts")
    return db


def build_view_v(db: Database):
    """Figure 1b: SELECT did, pid, price FROM parts NATURAL JOIN
    devices_parts NATURAL JOIN devices WHERE category = 'phone'."""
    joined = natural_join(
        natural_join(scan(db, "parts"), scan(db, "devices_parts")),
        scan(db, "devices"),
    )
    filtered = where(joined, col("category").eq(lit("phone")))
    from repro.algebra import project_columns

    return project_columns(filtered, ("did", "pid", "price"))


def build_view_v_prime(db: Database):
    """Figure 5b: the aggregate extension (total part cost per device)."""
    from repro.algebra import group_by

    joined = natural_join(
        natural_join(scan(db, "parts"), scan(db, "devices_parts")),
        scan(db, "devices"),
    )
    filtered = where(joined, col("category").eq(lit("phone")))
    return group_by(filtered, ("did",), [("sum", col("price"), "cost")])


@pytest.fixture(autouse=True)
def _scoped_metrics():
    """Every test observes into a private metrics registry.

    The process-default registry is shared state: without this, metric
    assertions depend on which test ran first (an earlier engine round
    leaves its counts behind).  ``metrics.scoped()`` swaps in a fresh
    registry per test and restores the previous one on exit.
    """
    from repro.obs import metrics

    with metrics.scoped() as registry:
        yield registry


@pytest.fixture
def view_v(running_example_db):
    return build_view_v(running_example_db)


@pytest.fixture
def view_v_prime(running_example_db):
    return build_view_v_prime(running_example_db)


# ----------------------------------------------------------------------
# hypothesis profiles: HYPOTHESIS_PROFILE=stress runs a deep fuzz.
# ----------------------------------------------------------------------
import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "stress",
    max_examples=1200,
    deadline=None,
    suppress_health_check=list(HealthCheck),
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])
