"""Multi-round integration over the BSMA workload: all eight views on
one engine, several maintenance rounds with mixed modifications beyond
the benchmark's pure-update stream."""

import random

import pytest

from repro.algebra import Relation, evaluate_plan
from repro.core import IdIvmEngine
from repro.workloads import BSMA_QUERIES, BsmaConfig, build_bsma_database

CONFIG = BsmaConfig(n_users=200, friends_per_user=5, n_tweets=600)


@pytest.fixture(scope="module")
def maintained_engine():
    db = build_bsma_database(CONFIG)
    engine = IdIvmEngine(db)
    views = {
        name: engine.define_view(name, build(db, CONFIG))
        for name, build in BSMA_QUERIES.items()
    }
    rng = random.Random(77)
    next_mid = CONFIG.n_tweets
    next_rwid = CONFIG.n_retweets
    for round_number in range(3):
        # Profile updates (the benchmark stream) ...
        for _ in range(20):
            uid = rng.randrange(CONFIG.n_users)
            row = db.table("users").get_uncounted((uid,))
            engine.log.update(
                "users", (uid,),
                {"tweetsnum": row[2] + 1, "favornum": row[3] + rng.randint(0, 2)},
            )
        # ... plus tweets, retweets and the occasional take-down.
        for _ in range(10):
            engine.log.insert(
                "microblog",
                (next_mid, rng.randrange(CONFIG.n_users),
                 rng.randrange(0, 1000), rng.randrange(CONFIG.n_topics)),
            )
            next_mid += 1
        for _ in range(6):
            engine.log.insert(
                "retweets",
                (next_rwid, rng.randrange(next_mid),
                 rng.randrange(CONFIG.n_users), rng.randrange(0, 1000)),
            )
            next_rwid += 1
        live_mentions = [r[0] for r in db.table("mentions").rows_uncounted()]
        for mnid in rng.sample(live_mentions, 3):
            engine.log.delete("mentions", (mnid,))
        engine.maintain()
    return engine, views, db


@pytest.mark.parametrize("name", list(BSMA_QUERIES))
def test_view_exact_after_rounds(maintained_engine, name):
    _engine, views, db = maintained_engine
    view = views[name]
    expected = evaluate_plan(view.plan, db).as_set()
    assert view.table.as_set() == expected


def test_caches_consistent_after_rounds(maintained_engine):
    from repro.core import node_by_id

    _engine, views, db = maintained_engine
    for name, view in views.items():
        for node_id, cache in view.caches.items():
            if node_id == view.plan.node_id:
                continue
            node = node_by_id(view.plan, node_id)
            expected = evaluate_plan(node, db).as_set()
            assert cache.as_set() == expected, (name, node.label())


def test_relation_pretty_renders(maintained_engine):
    _engine, views, _db = maintained_engine
    view = views["Q7"]
    rel = Relation(view.table.schema.columns, view.table.rows_uncounted())
    text = rel.pretty(limit=5)
    assert "uid" in text.splitlines()[0]
    if len(rel) > 5:
        assert "more rows" in text.splitlines()[-1]
