"""Tests for eager maintenance mode (paper Section 3)."""

from repro.algebra import evaluate_plan
from repro.core import IdIvmEngine
from repro.core.eager import EagerIvmEngine
from repro.storage import Database
from tests.conftest import build_view_v, build_view_v_prime


def make_db() -> Database:
    db = Database()
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    return db


class TestEagerMode:
    def test_view_fresh_after_every_modification(self):
        db = make_db()
        engine = EagerIvmEngine(db)
        view = engine.define_view("V", build_view_v(db))
        engine.update("parts", ("P1",), {"price": 11})
        assert ("D1", "P1", 11) in view.table.as_set()
        engine.insert("parts", ("P3", 5))
        engine.insert("devices_parts", ("D2", "P3"))
        assert ("D2", "P3", 5) in view.table.as_set()
        engine.delete("devices_parts", ("D1", "P2"))
        assert all(row[1] != "P2" for row in view.table.as_set())
        assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
        assert len(engine.rounds) == 4

    def test_transaction_defers_to_one_round(self):
        db = make_db()
        engine = EagerIvmEngine(db)
        view = engine.define_view("V", build_view_v(db))
        with engine.transaction():
            engine.update("parts", ("P1",), {"price": 11})
            engine.update("parts", ("P1",), {"price": 12})
            # Not maintained yet inside the block.
            assert ("D1", "P1", 10) in view.table.as_set()
        assert ("D1", "P1", 12) in view.table.as_set()
        assert len(engine.rounds) == 1

    def test_folding_makes_deferred_cheaper(self):
        """n updates of the same tuple: eager pays n rounds, deferred
        folds them into one effective change (Section 5)."""
        def run(eager: bool) -> int:
            db = make_db()
            engine = EagerIvmEngine(db)
            engine.define_view("Vp", build_view_v_prime(db))
            if eager:
                for price in (11, 12, 13, 14):
                    engine.update("parts", ("P1",), {"price": price})
            else:
                with engine.transaction():
                    for price in (11, 12, 13, 14):
                        engine.update("parts", ("P1",), {"price": price})
            return engine.total_cost()

        assert run(eager=False) < run(eager=True)

    def test_matches_deferred_engine_final_state(self):
        db_eager = make_db()
        eager = EagerIvmEngine(db_eager)
        v_eager = eager.define_view("Vp", build_view_v_prime(db_eager))
        db_deferred = make_db()
        deferred = IdIvmEngine(db_deferred)
        v_deferred = deferred.define_view("Vp", build_view_v_prime(db_deferred))

        mods = [
            ("update", "parts", ("P1",), {"price": 11}),
            ("insert", "parts", ("P3", 7), None),
            ("insert", "devices_parts", ("D1", "P3"), None),
            ("update", "devices", ("D3",), {"category": "phone"}),
            ("delete", "devices_parts", ("D2", "P1"), None),
        ]
        for kind, table, payload, changes in mods:
            if kind == "update":
                eager.update(table, payload, changes)
                deferred.log.update(table, payload, changes)
            elif kind == "insert":
                eager.insert(table, payload)
                deferred.log.insert(table, payload)
            else:
                eager.delete(table, payload)
                deferred.log.delete(table, payload)
        deferred.maintain()
        assert v_eager.table.as_set() == v_deferred.table.as_set()

    def test_phase_totals_accumulate(self):
        db = make_db()
        engine = EagerIvmEngine(db)
        engine.define_view("Vp", build_view_v_prime(db))
        engine.update("parts", ("P1",), {"price": 11})
        engine.update("parts", ("P2",), {"price": 21})
        totals = engine.phase_totals()
        assert totals["cache_update"].total > 0
        assert totals["view_update"].total > 0
