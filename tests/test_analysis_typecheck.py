"""Pass 1 (typecheck) unit tests: TC101/102/103/104/106 + fact inference."""

from __future__ import annotations

import pytest

from repro.algebra import equi_join, group_by, scan, where
from repro.algebra.plan import Project
from repro.analysis import analyze_plan
from repro.analysis.typecheck import (
    ColumnFact,
    check_split_complement,
    plan_column_facts,
)
from repro.analysis.diagnostics import AnalysisReport
from repro.expr import (
    And,
    Arith,
    Call,
    Cmp,
    Col,
    Lit,
    Not,
    may_be_null,
    nullable_columns_of,
)
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        ("k", "a", "s"),
        ("k",),
        nullable=("a",),
        types={"k": "int", "a": "int", "s": "str"},
    )
    db.table("t").load([(1, 2, "x"), (2, None, "y")])
    return db


def rule_ids(report):
    return [d.rule_id for d in report.diagnostics]


# ----------------------------------------------------------------------
# TC101: mixed-type comparisons
# ----------------------------------------------------------------------
def test_tc101_mixed_type_ordering_warns():
    db = make_db()
    plan = where(scan(db, "t"), Cmp("<=", Col("a"), Lit("zz")))
    report = analyze_plan(plan)
    [diag] = [d for d in report.diagnostics if d.rule_id == "TC101"]
    assert diag.severity == "warning"
    assert "UNKNOWN" in diag.message


def test_tc101_mixed_type_equality_is_constant():
    db = make_db()
    plan = where(scan(db, "t"), Cmp("=", Col("s"), Lit(7)))
    [diag] = [d for d in analyze_plan(plan).diagnostics if d.rule_id == "TC101"]
    assert "constant" in diag.message and "False" in diag.message


def test_tc101_same_type_comparison_is_clean():
    db = make_db()
    plan = where(scan(db, "t"), Cmp("<", Col("a"), Lit(10)))
    assert "TC101" not in rule_ids(analyze_plan(plan))


def test_tc101_unknown_type_is_clean():
    """No declaration, no judgment: unknown types check against anything."""
    db = Database()
    db.create_table("u", ("k", "c"), ("k",))  # no types declared
    plan = where(scan(db, "u"), Cmp("<", Col("c"), Lit("zz")))
    assert "TC101" not in rule_ids(analyze_plan(plan))


# ----------------------------------------------------------------------
# TC102: non-boolean filter predicates
# ----------------------------------------------------------------------
def test_tc102_non_boolean_predicate_is_error():
    db = make_db()
    plan = where(scan(db, "t"), Col("a"))
    [diag] = [d for d in analyze_plan(plan).diagnostics if d.rule_id == "TC102"]
    assert diag.severity == "error"


def test_tc102_boolean_predicate_is_clean():
    db = make_db()
    plan = where(scan(db, "t"), Cmp(">", Col("a"), Lit(0)))
    assert "TC102" not in rule_ids(analyze_plan(plan))


# ----------------------------------------------------------------------
# TC104 / TC106
# ----------------------------------------------------------------------
def test_tc104_sum_over_string_warns():
    db = make_db()
    plan = group_by(scan(db, "t"), ["k"], [("sum", Col("s"), "total")])
    [diag] = [d for d in analyze_plan(plan).diagnostics if d.rule_id == "TC104"]
    assert diag.severity == "warning"


def test_tc104_min_over_string_is_clean():
    db = make_db()
    plan = group_by(scan(db, "t"), ["k"], [("min", Col("s"), "lowest")])
    assert "TC104" not in rule_ids(analyze_plan(plan))


def test_tc106_str_int_arithmetic_is_error():
    db = make_db()
    plan = Project(scan(db, "t"), [("k", Col("k")), ("odd", Arith("-", Col("s"), Lit(1)))])
    [diag] = [d for d in analyze_plan(plan).diagnostics if d.rule_id == "TC106"]
    assert diag.severity == "error"
    assert "TypeError" in diag.message


def test_tc106_str_concat_and_repeat_are_clean():
    db = make_db()
    plan = Project(
        scan(db, "t"),
        [
            ("k", Col("k")),
            ("twice", Arith("+", Col("s"), Col("s"))),
            ("rep", Arith("*", Col("s"), Lit(3))),
        ],
    )
    assert "TC106" not in rule_ids(analyze_plan(plan))


# ----------------------------------------------------------------------
# TC103: the split-complement shape
# ----------------------------------------------------------------------
PHI_PRE = Cmp(">", Col("a__pre"), Lit(0))
PHI_POST = Cmp(">", Col("a__post"), Lit(0))
NULLABLE = {"a__pre": ColumnFact("int", True), "a__post": ColumnFact("int", True)}
NOT_NULL = {"a__pre": ColumnFact("int", False), "a__post": ColumnFact("int", False)}


def split_report(predicate, facts):
    report = AnalysisReport()
    check_split_complement(predicate, facts, "step 1", report)
    return report


def test_tc103_plain_not_over_nullable_complement_fires():
    report = split_report(And([PHI_PRE, Not(PHI_POST)]), NULLABLE)
    [diag] = report.diagnostics
    assert diag.rule_id == "TC103" and diag.severity == "error"


def test_tc103_is_true_wrapped_complement_is_clean():
    fixed = And([PHI_PRE, Not(Call("is_true", (PHI_POST,)))])
    assert split_report(fixed, NULLABLE).diagnostics == []


def test_tc103_non_nullable_predicate_is_clean():
    """NULL-free φ can't be UNKNOWN: plain Not is exact."""
    assert split_report(And([PHI_PRE, Not(PHI_POST)]), NOT_NULL).diagnostics == []


def test_tc103_keep_branch_both_negated_is_clean():
    """The update keep-branch negates BOTH sides; there is no un-negated
    counterpart conjunct, so the shape gate must not fire."""
    keep = And([Not(PHI_PRE), Not(PHI_POST)])
    assert split_report(keep, NULLABLE).diagnostics == []


def test_tc103_user_authored_negation_is_clean():
    """A lone Not over state columns without the counterpart sibling is
    the view's own semantics, not a generated complement."""
    assert split_report(And([Cmp("<", Col("k"), Lit(5)), Not(PHI_POST)]), NULLABLE).diagnostics == []


# ----------------------------------------------------------------------
# fact inference
# ----------------------------------------------------------------------
def test_scan_facts_from_declarations():
    db = make_db()
    facts = plan_column_facts(scan(db, "t"))
    assert facts["k"] == ColumnFact("int", False)
    assert facts["a"] == ColumnFact("int", True)
    assert facts["s"] == ColumnFact("str", False)


def test_equi_join_strips_nullability_from_key_columns():
    db = Database()
    db.create_table("l", ("k", "x"), ("k",), types={"x": "int"})
    db.create_table("r", ("j", "x2"), ("j",), types={"x2": "int"})
    plan = equi_join(scan(db, "l"), scan(db, "r"), [("x", "x2")])
    facts = plan_column_facts(plan)
    # x/x2 are nullable on their scans, but rows surviving x = x2 under
    # 3VL have both non-NULL.
    assert facts["x"].nullable is False
    assert facts["x2"].nullable is False


def test_groupby_count_fact_and_avg_fact():
    db = make_db()
    plan = group_by(
        scan(db, "t"),
        ["s"],
        [("count", None, "n"), ("avg", Col("a"), "mean"), ("sum", Col("a"), "tot")],
    )
    facts = plan_column_facts(plan)
    assert facts["n"] == ColumnFact("int", False)
    assert facts["mean"] == ColumnFact("float", True)
    assert facts["tot"] == ColumnFact("int", True)


# ----------------------------------------------------------------------
# expr.analysis nullability helpers (the FK-column regression)
# ----------------------------------------------------------------------
def test_fk_column_nullability_follows_declaration():
    """A foreign-key column is NOT implicitly NOT NULL: SQL permits NULL
    FK values (the reference is simply not checked).  The helpers must
    follow the schema declaration, both ways."""
    db = Database()
    db.create_table("parent", ("p",), ("p",))
    db.create_table(
        "child_loose", ("k", "ref"), ("k",), nullable=("ref",)
    )
    db.create_table("child_tight", ("k", "ref"), ("k",), nullable=())
    db.add_foreign_key("child_loose", ("ref",), "parent")
    db.add_foreign_key("child_tight", ("ref",), "parent")
    loose = db.table("child_loose").schema
    tight = db.table("child_tight").schema
    assert nullable_columns_of(loose) == frozenset({"ref"})
    assert nullable_columns_of(tight) == frozenset()
    assert may_be_null(Col("ref"), nullable_columns_of(loose)) is True
    assert may_be_null(Col("ref"), nullable_columns_of(tight)) is False


def test_may_be_null_structure():
    nullable = frozenset({"a"})
    assert may_be_null(Cmp("<", Col("a"), Lit(1)), nullable) is True
    assert may_be_null(Cmp("<", Col("b"), Lit(1)), nullable) is False
    assert may_be_null(Lit(None), nullable) is True
    assert may_be_null(Call("is_true", (Col("a"),)), nullable) is False
    assert may_be_null(Call("coalesce", (Col("a"), Lit(0))), nullable) is False
    assert may_be_null(Call("coalesce", (Col("a"), Lit(None))), nullable) is True


def test_may_be_null_rejects_unknown_nodes():
    with pytest.raises(TypeError):
        may_be_null(object(), frozenset())
