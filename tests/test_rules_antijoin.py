"""Rule-level tests for antisemijoin propagation (paper Table 13)."""

import pytest

from repro.algebra import AntiJoin, rename, scan
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import minimize_ir
from repro.core.rules.antijoin import propagate_antijoin
from repro.expr import col
from repro.storage import Database


@pytest.fixture
def db():
    """Products and orders; the antijoin lists unordered products."""
    database = Database()
    database.create_table("products", ("sku", "price"), ("sku",))
    database.create_table("orders", ("oid", "o_sku"), ("oid",))
    database.table("products").load([("A", 10), ("B", 20), ("C", 30)])
    database.table("orders").load([(1, "A"), (2, "A"), (3, "B")])
    return database


@pytest.fixture
def plan(db):
    return annotate_plan(
        AntiJoin(
            scan(db, "products"),
            rename(scan(db, "orders"), {"oid": "o_oid", "o_sku": "o_sku"}),
            col("sku").eq(col("o_sku")),
        )
    )


def run_rule(db, plan, side, in_schema, rows, db_pre=None):
    """Execute the instantiated rules; *db_pre* defaults to the live db
    (fine for rules that only read the post state)."""
    ctx = IrContext(db_pre if db_pre is not None else db, db)
    ctx.diffs["in"] = Diff(in_schema, rows)
    outputs = propagate_antijoin(plan, DiffSource("in", in_schema), in_schema, side)
    return [
        (schema, Diff.from_relation(schema, run_ir(minimize_ir(ir), ctx)))
        for schema, ir in outputs
    ]


def left_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.left.node_id}", ("sku",), **kwargs)


def right_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.children[1].node_id}", ("o_oid",), **kwargs)


class TestLeftSide:
    def test_insert_kept_only_without_match(self, db, plan):
        schema = left_schema(plan, INSERT, post_attrs=("price",))
        db.table("products").insert_uncounted(("D", 40))
        db.table("products").insert_uncounted(("E", 50))
        db.table("orders").insert_uncounted((9, "E"))
        [(out_schema, diff)] = run_rule(
            db, plan, 0, schema, [("D", 40), ("E", 50)]
        )
        assert out_schema.kind == INSERT
        assert diff.rows == [("D", 40)]

    def test_delete_passes_through(self, db, plan):
        schema = left_schema(plan, DELETE, pre_attrs=("price",))
        [(out_schema, diff)] = run_rule(db, plan, 0, schema, [("C", 30)])
        assert out_schema.kind == DELETE
        assert len(diff) == 1

    def test_nonconditional_update_passes_through(self, db, plan):
        schema = left_schema(plan, UPDATE, pre_attrs=("price",), post_attrs=("price",))
        outputs = run_rule(db, plan, 0, schema, [("C", 30, 35)])
        assert len(outputs) == 1
        assert outputs[0][0].kind == UPDATE


class TestRightSide:
    def test_insert_deletes_newly_matched_left(self, db, plan):
        """A new order for C removes C from the unordered view."""
        schema = right_schema(plan, INSERT, post_attrs=("o_sku",))
        db.table("orders").insert_uncounted((9, "C"))
        [(out_schema, diff)] = run_rule(db, plan, 1, schema, [(9, "C")])
        assert out_schema.kind == DELETE
        assert out_schema.id_attrs == ("sku",)
        assert diff.rows == [("C",)]

    def test_insert_for_already_matched_is_dummy_delete(self, db, plan):
        schema = right_schema(plan, INSERT, post_attrs=("o_sku",))
        db.table("orders").insert_uncounted((9, "A"))
        [(_, diff)] = run_rule(db, plan, 1, schema, [(9, "A")])
        # A was already matched -> the delete is overestimated but its
        # target is not in the view, so APPLY absorbs it.
        assert diff.rows == [("A",)]

    def test_delete_reinstates_left_rows(self, db, plan):
        """Deleting B's only order puts B back into the view."""
        schema = right_schema(plan, DELETE, pre_attrs=("o_sku",))
        db_pre = db.copy()
        db.table("orders").delete_uncounted((3,))
        [(out_schema, diff)] = run_rule(db, plan, 1, schema, [(3, "B")], db_pre)
        assert out_schema.kind == INSERT
        assert diff.rows == [("B", 20)]

    def test_delete_with_surviving_match_inserts_nothing(self, db, plan):
        schema = right_schema(plan, DELETE, pre_attrs=("o_sku",))
        db_pre = db.copy()
        db.table("orders").delete_uncounted((1,))
        [(_, diff)] = run_rule(db, plan, 1, schema, [(1, "A")], db_pre)
        assert len(diff) == 0  # order 2 still matches A

    def test_update_moves_match(self, db, plan):
        """Re-pointing B's order to C: B re-enters, C leaves."""
        schema = right_schema(
            plan, UPDATE, pre_attrs=("o_sku",), post_attrs=("o_sku",)
        )
        db_pre = db.copy()
        db.table("orders").update_uncounted((3,), {"o_sku": "C"})
        outputs = run_rule(db, plan, 1, schema, [(3, "B", "C")], db_pre)
        by_kind = {s.kind: d for s, d in outputs}
        assert by_kind[DELETE].rows == [("C",)]
        assert by_kind[INSERT].rows == [("B", 20)]

    def test_update_on_nonjoin_attr_not_triggered(self, db):
        database = db
        database.create_table("extra", ("eid", "e_sku", "note"), ("eid",))
        database.table("extra").load([(1, "A", "x")])
        plan = annotate_plan(
            AntiJoin(
                scan(database, "products"),
                scan(database, "extra"),
                col("sku").eq(col("e_sku")),
            )
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.children[1].node_id}", ("eid",),
            pre_attrs=("note",), post_attrs=("note",),
        )
        ctx = IrContext(database, database)
        ctx.diffs["in"] = Diff(schema, [(1, "x", "y")])
        outputs = propagate_antijoin(plan, DiffSource("in", schema), schema, 1)
        assert outputs == []
