"""Golden tests replaying the paper's worked examples end to end."""

from repro.algebra import evaluate_plan
from repro.core import IdIvmEngine, annotate_plan
from repro.core.apply import apply_diff
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from tests.conftest import build_view_v, build_view_v_prime


class TestFigure2:
    """Tuple-based vs ID-based diffs for the price update of Figure 2."""

    def test_idiff_is_more_compact_than_tdiff(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        # ∆u_parts has 1 row; the equivalent t-diff DuV needs 2 (one per
        # view tuple): the i-diff compression factor p = 2.
        assert report.diff_sizes["base_u_parts__price"] == 1
        view_rows_touched = 2
        assert report.total_cost == 1 + view_rows_touched

    def test_q_delta_needs_no_base_access(self, running_example_db, view_v):
        """Q∆ of Figure 2 reads only ∆u_parts — zero join accesses."""
        engine = IdIvmEngine(running_example_db)
        engine.define_view("V", view_v)
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V"]
        assert report.cost_of("view_diff") == 0

    def test_final_view_state(self, running_example_db, view_v):
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("V", view_v)
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.maintain()
        assert view.table.as_set() == {
            ("D1", "P1", 11),
            ("D2", "P1", 11),
            ("D1", "P2", 20),
        }


class TestSection1Overestimation:
    def test_dummy_p3_tuple(self, running_example_db, view_v):
        """The introduction's P3 discussion: a part outside the view
        produces a dummy i-diff row whose application touches nothing."""
        running_example_db.table("parts").insert_uncounted(("P3", 20))
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("V", build_view_v(running_example_db))
        engine.log.update("parts", ("P3",), {"price": 21})
        report = engine.maintain()["V"]
        # One index lookup (the dummy probe), zero modifications.
        assert report.total_cost == 1
        assert all(row[1] != "P3" for row in view.table.as_set())


class TestExample41AggregateView:
    def test_v_prime_definition(self, running_example_db, view_v_prime):
        result = evaluate_plan(view_v_prime, running_example_db)
        assert result.as_set() == {("D1", 30), ("D2", 10)}

    def test_figure7_maintenance(self, running_example_db, view_v_prime):
        """The ∆-script of Figure 7: cache apply + RETURNING-driven sum."""
        engine = IdIvmEngine(running_example_db)
        view = engine.define_view("Vp", view_v_prime)
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["Vp"]
        assert view.table.as_set() == {("D1", 31), ("D2", 11)}
        # Cache: 1 lookup + 2 row writes; view: 2 groups x (lookup+write).
        assert report.cost_of("cache_update") == 3
        assert report.cost_of("view_update") == 4
        assert report.cost_of("view_diff") == 0


class TestExample25KeyComponents:
    def test_view_identifiable_through_either_component(
        self, running_example_db, view_v
    ):
        """Example 2.5: V's key {did, pid} splits into components; i-diffs
        may identify rows through did alone or pid alone."""
        annotated = annotate_plan(view_v)
        assert set(annotated.ids) == {"did", "pid"}
        view_table = IdIvmEngine(running_example_db).define_view(
            "V", view_v
        ).table

        by_pid = Diff(
            DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",)),
            [("P1", 10, 11)],
        )
        applied = apply_diff(view_table, by_pid)
        assert len(applied) == 2

        by_did = Diff(DiffSchema(DELETE, "V", ("did",)), [("D1",)])
        applied = apply_diff(view_table, by_did)
        assert len(applied) == 2
        assert view_table.as_set() == {("D2", "P1", 11)}


class TestExample44BlockingSum:
    def test_sum_operator_is_blocking(self, running_example_db, view_v_prime):
        """The γ-sum step sees all incoming branches before emitting."""
        from repro.core import ScriptGenerator, generate_base_schemas
        from repro.core.rules.aggregate import AssociativeAggregateStep

        generator = ScriptGenerator("Vp", view_v_prime)
        generated = generator.generate(
            generate_base_schemas(generator.plan, running_example_db)
        )
        steps = [
            s
            for s in generated.script.steps
            if isinstance(s, AssociativeAggregateStep)
        ]
        assert len(steps) == 1
        # Every base table contributes branches into the single step.
        assert len(steps[0].inputs) >= 3
