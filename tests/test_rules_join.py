"""Rule-level tests for join propagation (paper Tables 4 and 10)."""

import pytest

from repro.algebra import Join, rename, scan
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import estimate_probe_count, minimize_ir
from repro.core.rules.join import propagate_join
from repro.expr import col, lit
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("orders", ("oid", "sku", "qty"), ("oid",))
    database.create_table("products", ("p_sku", "price"), ("p_sku",))
    database.table("orders").load([(1, "A", 2), (2, "A", 1), (3, "B", 5)])
    database.table("products").load([("A", 10), ("B", 20), ("C", 30)])
    return database


@pytest.fixture
def plan(db):
    return annotate_plan(
        Join(scan(db, "orders"), scan(db, "products"), col("sku").eq(col("p_sku")))
    )


def run_rule(db, plan, side, in_schema, rows):
    ctx = IrContext(db, db)
    ctx.diffs["in"] = Diff(in_schema, rows)
    outputs = propagate_join(plan, DiffSource("in", in_schema), in_schema, side)
    return [
        (schema, Diff.from_relation(schema, run_ir(minimize_ir(ir), ctx)))
        for schema, ir in outputs
    ]


def left_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.left.node_id}", ("oid",), **kwargs)


def right_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.right.node_id}", ("p_sku",), **kwargs)


class TestInsertRules:
    def test_left_insert_joins_with_right_post(self, db, plan):
        schema = left_schema(plan, INSERT, post_attrs=("sku", "qty"))
        db.table("orders").insert_uncounted((9, "B", 4))
        [(out_schema, diff)] = run_rule(db, plan, 0, schema, [(9, "B", 4)])
        assert out_schema.kind == INSERT
        assert diff.rows == [(9, "B", 4, "B", 20)]

    def test_right_insert_joins_with_left_post(self, db, plan):
        schema = right_schema(plan, INSERT, post_attrs=("price",))
        db.table("products").insert_uncounted(("D", 40))
        [(_, diff)] = run_rule(db, plan, 1, schema, [("D", 40)])
        assert len(diff) == 0  # no order references D

    def test_insert_fanning_out(self, db, plan):
        """A new product matched by several orders yields one insert per
        combination (full output IDs keep them distinct)."""
        db.table("products").delete_uncounted(("A",))
        schema = right_schema(plan, INSERT, post_attrs=("price",))
        db.table("products").insert_uncounted(("A", 11))
        [(_, diff)] = run_rule(db, plan, 1, schema, [("A", 11)])
        assert len(diff) == 2


class TestDeleteRules:
    def test_left_delete_passes_through_without_probe(self, db, plan):
        schema = left_schema(plan, DELETE, pre_attrs=("sku", "qty"))
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, "A", 2)])
        outputs = propagate_join(plan, DiffSource("in", schema), schema, 0)
        [(out_schema, ir)] = outputs
        assert out_schema.kind == DELETE
        assert estimate_probe_count(minimize_ir(ir)) == 0
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.id_of(diff.rows[0]) == (1,)

    def test_right_delete_keyed_by_right_ids(self, db, plan):
        """Deleting a product kills all its combinations through the
        product-side ID alone — the i-diff compression at work."""
        schema = right_schema(plan, DELETE, pre_attrs=("price",))
        [(out_schema, diff)] = run_rule(db, plan, 1, schema, [("A", 10)])
        assert out_schema.kind == DELETE
        assert out_schema.id_attrs == ("sku",)  # canonical equated column
        assert len(diff) == 1


class TestUpdateNonConditional:
    def test_pass_through(self, db, plan):
        schema = right_schema(
            plan, UPDATE, pre_attrs=("price",), post_attrs=("price",)
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [("A", 10, 11)])
        outputs = propagate_join(plan, DiffSource("in", schema), schema, 1)
        assert len(outputs) == 1
        out_schema, ir = outputs[0]
        assert out_schema.kind == UPDATE
        assert estimate_probe_count(minimize_ir(ir)) == 0
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        # One diff row still stands for both A-orders (p = 2).
        assert len(diff) == 1


class TestUpdateOnJoinAttribute:
    def _schema(self, plan):
        return left_schema(plan, UPDATE, pre_attrs=("sku", "qty"), post_attrs=("sku",))

    def test_lowered_to_delete_plus_insert(self, db, plan):
        """sku is equated to the product key, so it is a join-output ID;
        updating it is a key update lowered to delete + insert."""
        db.table("orders").update_uncounted((1,), {"sku": "B"})
        outputs = run_rule(db, plan, 0, self._schema(plan), [(1, "A", 2, "B")])
        kinds = {s.kind for s, _ in outputs}
        assert kinds == {DELETE, INSERT}
        by_kind = {s.kind: (s, d) for s, d in outputs}
        # The old combination disappears through the order's ID alone.
        delete_schema, delete_diff = by_kind[DELETE]
        assert delete_schema.id_attrs == ("oid",)
        assert delete_diff.rows[0][0] == 1
        # New combo (1, B) inserted with the full row.
        _, insert_diff = by_kind[INSERT]
        assert insert_diff.rows == [(1, "B", 2, "B", 20)]

    def test_no_new_match_means_no_insert_rows(self, db, plan):
        db.table("orders").update_uncounted((1,), {"sku": "Z"})
        outputs = run_rule(db, plan, 0, self._schema(plan), [(1, "A", 2, "Z")])
        by_kind = {s.kind: d for s, d in outputs}
        assert len(by_kind[INSERT]) == 0
        assert len(by_kind[DELETE]) == 1


class TestCrossProduct:
    def test_insert_pairs_with_everything(self, db):
        left = annotate_plan(
            Join(
                scan(db, "orders"),
                rename(scan(db, "products"), {"p_sku": "ps", "price": "pr"}),
                None,
            )
        )
        schema = DiffSchema(
            INSERT, f"n{left.left.node_id}", ("oid",), post_attrs=("sku", "qty")
        )
        db.table("orders").insert_uncounted((9, "Q", 1))
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(9, "Q", 1)])
        outputs = propagate_join(left, DiffSource("in", schema), schema, 0)
        [(out_schema, ir)] = outputs
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert len(diff) == 3  # one per product

    def test_update_passes_through_cross(self, db):
        plan = annotate_plan(
            Join(
                scan(db, "orders"),
                rename(scan(db, "products"), {"p_sku": "ps", "price": "pr"}),
                None,
            )
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.left.node_id}", ("oid",),
            pre_attrs=("qty",), post_attrs=("qty",),
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, 2, 3)])
        outputs = propagate_join(plan, DiffSource("in", schema), schema, 0)
        assert len(outputs) == 1
        assert outputs[0][0].kind == UPDATE
