"""Unit tests for plan construction and full evaluation."""

import pytest

from repro.algebra import (
    AggSpec,
    AntiJoin,
    GroupBy,
    Join,
    Project,
    Scan,
    Select,
    UnionAll,
    difference,
    equi_join,
    evaluate_plan,
    group_by,
    natural_join,
    project_columns,
    rename,
    scan,
    scans_of,
    where,
)
from repro.errors import PlanError
from repro.expr import Call, col, lit
from repro.storage import Database, TableSchema


class TestPlanConstruction:
    def test_scan_columns(self, running_example_db):
        node = scan(running_example_db, "parts")
        assert node.columns == ("pid", "price")

    def test_scan_alias_prefixes_columns(self, running_example_db):
        node = scan(running_example_db, "parts", alias="p2")
        assert node.columns == ("p2_pid", "p2_price")

    def test_join_requires_disjoint_columns(self, running_example_db):
        left = scan(running_example_db, "parts")
        right = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            Join(left, right, None)

    def test_select_validates_columns(self, running_example_db):
        node = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            Select(node, col("zzz").eq(lit(1)))

    def test_project_validates_columns(self, running_example_db):
        node = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            Project(node, [("x", col("zzz"))])

    def test_project_rejects_duplicate_names(self, running_example_db):
        node = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            Project(node, [("x", col("pid")), ("x", col("price"))])

    def test_union_requires_same_columns(self, running_example_db):
        parts = scan(running_example_db, "parts")
        devices = scan(running_example_db, "devices")
        with pytest.raises(PlanError):
            UnionAll(parts, devices)

    def test_groupby_requires_keys(self, running_example_db):
        node = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            GroupBy(node, (), (AggSpec("sum", col("price"), "s"),))

    def test_groupby_requires_aggs(self, running_example_db):
        node = scan(running_example_db, "parts")
        with pytest.raises(PlanError):
            GroupBy(node, ("pid",), ())

    def test_aggspec_count_star(self):
        spec = AggSpec("count", None, "n")
        assert spec.arg_columns == frozenset()

    def test_aggspec_requires_arg_except_count(self):
        with pytest.raises(PlanError):
            AggSpec("sum", None, "s")

    def test_unknown_agg_func(self):
        with pytest.raises(PlanError):
            AggSpec("median", col("x"), "m")

    def test_scans_of(self, view_v):
        scans = scans_of(view_v)
        assert [s.table for s in scans] == ["parts", "devices_parts", "devices"]

    def test_walk_preorder(self, view_v):
        kinds = [type(n).__name__ for n in view_v.walk()]
        assert kinds[0] == "Project"
        assert "Scan" in kinds


class TestEvaluation:
    def test_running_example_view_instance(self, running_example_db, view_v):
        """Figure 2's initial view instance V(DB)."""
        result = evaluate_plan(view_v, running_example_db)
        assert result.columns == ("did", "pid", "price")
        assert result.as_set() == {
            ("D1", "P1", 10),
            ("D2", "P1", 10),
            ("D1", "P2", 20),
        }

    def test_aggregate_view_v_prime(self, running_example_db, view_v_prime):
        """Figure 5: total part cost per phone device."""
        result = evaluate_plan(view_v_prime, running_example_db)
        assert result.as_set() == {("D1", 30), ("D2", 10)}

    def test_selection(self, running_example_db):
        node = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        result = evaluate_plan(node, running_example_db)
        assert result.as_set() == {("D1", "phone"), ("D2", "phone")}

    def test_generalized_projection(self, running_example_db):
        node = Project(
            scan(running_example_db, "parts"),
            [("pid", col("pid")), ("double_price", col("price") * lit(2))],
        )
        result = evaluate_plan(node, running_example_db)
        assert result.as_set() == {("P1", 20), ("P2", 40)}

    def test_projection_with_scalar_function(self, running_example_db):
        node = Project(
            scan(running_example_db, "devices"),
            [("did", col("did")), ("cat", Call("upper", [col("category")]))],
        )
        result = evaluate_plan(node, running_example_db)
        assert ("D1", "PHONE") in result.as_set()

    def test_cross_product(self, running_example_db):
        parts = scan(running_example_db, "parts")
        devices = rename(
            scan(running_example_db, "devices"), {"did": "d", "category": "c"}
        )
        node = Join(parts, devices, None)
        result = evaluate_plan(node, running_example_db)
        assert len(result) == 2 * 3

    def test_theta_join(self, running_example_db):
        parts = scan(running_example_db, "parts")
        parts2 = scan(running_example_db, "parts", alias="p2")
        node = Join(parts, parts2, col("price").lt(col("p2_price")))
        result = evaluate_plan(node, running_example_db)
        assert result.as_set() == {("P1", 10, "P2", 20)}

    def test_equi_join_helper(self, running_example_db):
        dp = scan(running_example_db, "devices_parts")
        parts = rename(scan(running_example_db, "parts"), {"pid": "p_pid"})
        node = equi_join(dp, parts, [("pid", "p_pid")])
        result = evaluate_plan(node, running_example_db)
        assert len(result) == 3

    def test_antijoin(self, running_example_db):
        # devices with no parts: D3
        devices = scan(running_example_db, "devices")
        dp = rename(scan(running_example_db, "devices_parts"), {"did": "dp_did", "pid": "dp_pid"})
        node = AntiJoin(devices, dp, col("did").eq(col("dp_did")))
        result = evaluate_plan(node, running_example_db)
        assert result.as_set() == {("D3", "tablet")}

    def test_difference(self, running_example_db):
        all_dids = project_columns(scan(running_example_db, "devices"), ("did",))
        phone_dids = project_columns(
            where(scan(running_example_db, "devices"), col("category").eq(lit("phone"))),
            ("did",),
        )
        node = difference(all_dids, phone_dids)
        result = evaluate_plan(node, running_example_db)
        assert result.as_set() == {("D3",)}

    def test_union_all_branch_column(self, running_example_db):
        phones = where(scan(running_example_db, "devices"), col("category").eq(lit("phone")))
        tablets = where(scan(running_example_db, "devices"), col("category").eq(lit("tablet")))
        node = UnionAll(phones, tablets)
        result = evaluate_plan(node, running_example_db)
        assert result.columns == ("did", "category", "b")
        assert ("D1", "phone", 0) in result.as_set()
        assert ("D3", "tablet", 1) in result.as_set()

    def test_groupby_sum_count_avg_min_max(self, running_example_db):
        dp = scan(running_example_db, "devices_parts")
        parts = rename(scan(running_example_db, "parts"), {"pid": "p_pid"})
        joined = equi_join(dp, parts, [("pid", "p_pid")])
        node = group_by(
            joined,
            ("did",),
            [
                ("sum", col("price"), "total"),
                ("count", None, "n"),
                ("avg", col("price"), "mean"),
                ("min", col("price"), "lo"),
                ("max", col("price"), "hi"),
            ],
        )
        result = evaluate_plan(node, running_example_db)
        rows = {r[0]: r[1:] for r in result.rows}
        assert rows["D1"] == (30, 2, 15.0, 10, 20)
        assert rows["D2"] == (10, 1, 10.0, 10, 10)

    def test_count_arg_skips_nulls(self):
        db = Database()
        db.create_table("t", ("k", "g", "v"), ("k",))
        db.table("t").load([(1, "a", 5), (2, "a", None), (3, "b", 7)])
        node = group_by(
            scan(db, "t"), ("g",), [("count", col("v"), "nv"), ("count", None, "n")]
        )
        result = evaluate_plan(node, db)
        rows = {r[0]: r[1:] for r in result.rows}
        assert rows["a"] == (1, 2)
        assert rows["b"] == (1, 1)

    def test_sum_of_empty_group_absent(self, running_example_db):
        # Groups only exist for rows present in the input.
        node = group_by(
            where(scan(running_example_db, "parts"), col("price").gt(lit(100))),
            ("pid",),
            [("sum", col("price"), "s")],
        )
        result = evaluate_plan(node, running_example_db)
        assert len(result) == 0

    def test_natural_join_keeps_one_copy(self, running_example_db):
        node = natural_join(
            scan(running_example_db, "parts"), scan(running_example_db, "devices_parts")
        )
        result = evaluate_plan(node, running_example_db)
        assert result.columns == ("pid", "price", "did")
        assert len(result) == 3

    def test_natural_join_requires_shared_columns(self, running_example_db):
        with pytest.raises(PlanError):
            natural_join(
                scan(running_example_db, "parts"),
                rename(scan(running_example_db, "devices"), {"did": "x", "category": "y"}),
            )

    def test_evaluation_counts_base_accesses(self, running_example_db, view_v):
        running_example_db.counters.reset()
        evaluate_plan(view_v, running_example_db)
        # 2 parts + 3 devices_parts + 3 devices rows scanned
        assert running_example_db.counters.total.tuple_reads == 8


class TestAggregateNullSemantics:
    """SQL NULL behavior of every aggregate (regression: _Accumulator)."""

    def _agg(self, rows, aggs):
        db = Database()
        db.create_table("t", ("k", "g", "v"), ("k",))
        db.table("t").load(rows)
        node = group_by(scan(db, "t"), ("g",), aggs)
        result = evaluate_plan(node, db)
        return {r[0]: r[1:] for r in result.rows}

    def test_nulls_skipped_by_every_aggregate(self):
        rows = [(1, "a", 5), (2, "a", None), (3, "a", 9), (4, "b", None)]
        out = self._agg(
            rows,
            [
                ("sum", col("v"), "s"),
                ("count", col("v"), "c"),
                ("count", None, "n"),
                ("avg", col("v"), "m"),
                ("min", col("v"), "lo"),
                ("max", col("v"), "hi"),
            ],
        )
        assert out["a"] == (14, 2, 3, 7.0, 5, 9)

    def test_all_null_group(self):
        rows = [(1, "b", None), (2, "b", None)]
        out = self._agg(
            rows,
            [
                ("sum", col("v"), "s"),
                ("count", col("v"), "c"),
                ("count", None, "n"),
                ("avg", col("v"), "m"),
                ("min", col("v"), "lo"),
                ("max", col("v"), "hi"),
            ],
        )
        # sum/avg/min/max of an all-NULL group are NULL; count(v) is 0
        # but count(*) still sees both rows.
        assert out["b"] == (None, 0, 2, None, None, None)

    def test_min_max_never_compare_against_null(self):
        # A leading NULL must not poison the running min/max (TypeError
        # from `None < v` on Python 3).
        rows = [(1, "a", None), (2, "a", 4), (3, "a", None), (4, "a", 2)]
        out = self._agg(rows, [("min", col("v"), "lo"), ("max", col("v"), "hi")])
        assert out["a"] == (2, 4)

    def test_non_numeric_values_do_not_skew_sum_or_avg(self):
        # count(v) counts every non-NULL value, but sum/avg only fold
        # numerics — their denominators must agree with what was summed.
        rows = [(1, "a", 10), (2, "a", "oops"), (3, "a", 20)]
        out = self._agg(
            rows,
            [("sum", col("v"), "s"), ("count", col("v"), "c"), ("avg", col("v"), "m")],
        )
        assert out["a"] == (30, 3, 15.0)

    def test_delta_aggregate_view_with_nulls(self):
        # End-to-end: the associative aggregate step keeps NULL semantics
        # across maintenance rounds (group goes all-NULL and back).
        from repro.core import IdIvmEngine

        db = Database()
        db.create_table("t", ("k", "g", "v"), ("k",))
        db.table("t").load([(1, "a", 5), (2, "a", None), (3, "b", 1)])
        engine = IdIvmEngine(db)
        view = engine.define_view(
            "V",
            group_by(
                scan(db, "t"),
                ("g",),
                [("sum", col("v"), "s"), ("count", col("v"), "c")],
            ),
        )
        assert view.table.as_set() == {("a", 5, 1), ("b", 1, 1)}
        engine.log.update("t", (1,), {"v": None})
        engine.maintain()
        assert view.table.as_set() == {("a", None, 0), ("b", 1, 1)}
        engine.log.update("t", (2,), {"v": 7})
        engine.maintain()
        assert view.table.as_set() == {("a", 7, 1), ("b", 1, 1)}
