"""Tests for :mod:`repro.costmodel.measure` and for the chain closed
forms of :mod:`repro.costmodel.model`.

The property tests build uniform join chains with exactly known
per-join fanouts, run both engines on a batch of pass-through updates
and pin :func:`estimate_a_for_chain` / :func:`estimate_p_for_chain`
against the measured diff-driven loop counters: on a uniform chain with
distinct probe keys the closed forms are exact, not approximations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TupleIvmEngine
from repro.core import IdIvmEngine
from repro.core.engine import MaintenanceReport
from repro.costmodel.measure import (
    MeasuredParameters,
    measure_a,
    observed_speedup,
)
from repro.costmodel.model import estimate_a_for_chain, estimate_p_for_chain
from repro.storage import AccessCounts, Database


class TestMeasuredParameters:
    def test_p_is_view_rows_per_base_diff_row(self):
        m = MeasuredParameters(
            base_diff_size=10, view_diff_size=25, id_cost=40, tuple_cost=200
        )
        assert m.p == 2.5
        assert m.observed_speedup == 5.0

    def test_p_of_empty_diff_is_zero(self):
        m = MeasuredParameters(
            base_diff_size=0, view_diff_size=0, id_cost=0, tuple_cost=0
        )
        assert m.p == 0.0

    def test_speedup_with_free_id_round(self):
        free = MeasuredParameters(
            base_diff_size=1, view_diff_size=1, id_cost=0, tuple_cost=7
        )
        assert free.observed_speedup == float("inf")
        trivial = MeasuredParameters(
            base_diff_size=1, view_diff_size=1, id_cost=0, tuple_cost=0
        )
        assert trivial.observed_speedup == 1.0


def _report(view_diff_total: int = 0, total: int = 0) -> MaintenanceReport:
    report = MaintenanceReport("V")
    counts = AccessCounts()
    counts.index_lookups = view_diff_total
    report.phase_counts["view_diff"] = counts
    if total:
        extra = AccessCounts()
        extra.index_lookups = total
        report.phase_counts["view_update"] = extra
    return report


class TestMeasureHelpers:
    def test_measure_a_divides_view_diff_cost(self):
        assert measure_a(_report(view_diff_total=30), 10) == 3.0

    def test_measure_a_of_empty_diff_is_zero(self):
        assert measure_a(_report(view_diff_total=30), 0) == 0.0

    def test_observed_speedup_ratio(self):
        tuple_report = _report(view_diff_total=60, total=40)
        id_report = _report(view_diff_total=0, total=20)
        assert observed_speedup(tuple_report, id_report) == 5.0

    def test_observed_speedup_zero_id_cost(self):
        assert observed_speedup(_report(10), _report(0)) == float("inf")
        assert observed_speedup(_report(0), _report(0)) == 1.0


# ----------------------------------------------------------------------
# uniform join chains with exactly known fanouts
# ----------------------------------------------------------------------
def _chain_db(fanouts: list[int], n0: int) -> Database:
    """T0(c0, v) ⋈ T1(c0, c1) ⋈ T2(c1, c2) ⋈ … with exactly *fanouts[i]*
    matches per probe at join i (all keys distinct: no probe dedupe)."""
    db = Database()
    db.create_table("T0", ("c0", "v"), ("c0",))
    db.table("T0").load([(i, 0) for i in range(n0)])
    n_prev = n0
    for i, fanout in enumerate(fanouts, start=1):
        left, right = f"c{i - 1}", f"c{i}"
        db.create_table(f"T{i}", (left, right), (left, right))
        rows = [
            (k, k * fanout + j) for k in range(n_prev) for j in range(fanout)
        ]
        db.table(f"T{i}").load(rows)
        n_prev *= fanout
    return db


def _chain_view(db: Database, n_joins: int):
    from repro.algebra import natural_join, scan

    plan = scan(db, "T0")
    for i in range(1, n_joins + 1):
        plan = natural_join(plan, scan(db, f"T{i}"))
    return plan


@settings(max_examples=20, deadline=None)
@given(
    fanouts=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3),
    d=st.integers(min_value=1, max_value=3),
)
def test_chain_estimates_match_measured_counters(fanouts, d):
    """Pin the closed forms against the engines' counters, exactly.

    The executor's diff-driven loop pays one index lookup per *driving
    row* where the Appendix A form charges one per join, so on a chain
    with distinct probe keys:

        measured_a == estimate_a_for_chain(f) + Σ_i (Π_{j<i} f_j − 1)

    (equal when every prefix product is 1 — the estimate is a lower
    bound for fanouts >= 1).  p has no such gap: the i-diff passes
    through and touches exactly s·Πf view rows per base diff row.
    """
    n0 = max(4, d)
    estimated_a = estimate_a_for_chain([float(f) for f in fanouts])
    expected_p = estimate_p_for_chain([float(f) for f in fanouts])
    lookup_gap, acc = 0.0, 1.0
    for f in fanouts:
        lookup_gap += acc - 1
        acc *= f

    db_tuple = _chain_db(fanouts, n0)
    tuple_engine = TupleIvmEngine(db_tuple)
    tuple_engine.define_view("V", _chain_view(db_tuple, len(fanouts)))
    for i in range(d):
        tuple_engine.log.update("T0", (i,), {"v": 1})
    tuple_report = tuple_engine.maintain()["V"]
    assert measure_a(tuple_report, d) == estimated_a + lookup_gap

    db_id = _chain_db(fanouts, n0)
    id_engine = IdIvmEngine(db_id)
    view = id_engine.define_view("V", _chain_view(db_id, len(fanouts)))
    for i in range(d):
        id_engine.log.update("T0", (i,), {"v": 1})
    id_report = id_engine.maintain()["V"]
    touched = sum(
        c.tuple_writes for ph, c in id_report.phase_counts.items()
        if ph != "__total__"
    )
    assert touched / d == expected_p
    from repro.algebra import evaluate_plan

    assert view.table.as_set() == evaluate_plan(view.plan, db_id).as_set()


@settings(max_examples=20, deadline=None)
@given(
    fanouts=st.lists(
        st.floats(min_value=0.5, max_value=8, allow_nan=False), max_size=4
    ),
    selectivity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_chain_closed_form_identities(fanouts, selectivity):
    """a = Σ(1 + Π f) term-wise and p = s·Πf, for any real fanouts."""
    a = estimate_a_for_chain(fanouts)
    acc, expected = 1.0, 0.0
    for f in fanouts:
        expected += 1 + acc * f
        acc *= f
    assert abs(a - expected) < 1e-9
    p = estimate_p_for_chain(fanouts, selectivity)
    prod = 1.0
    for f in fanouts:
        prod *= f
    assert abs(p - selectivity * prod) < 1e-9
    # Appendix A.2.1: a >= 1 + p when every fanout >= 1 and s = 1.
    if all(f >= 1 for f in fanouts) and fanouts:
        assert a + 1e-9 >= 1 + estimate_p_for_chain(fanouts)
