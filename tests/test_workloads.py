"""Tests for the benchmark workload generators (Figures 9 and 11)."""

import pytest

from repro.algebra import evaluate_plan
from repro.core import IdIvmEngine
from repro.errors import WorkloadError
from repro.workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_bsma_database,
    build_devices_database,
    build_flat_view,
    log_batch,
    mixed_modification_batch,
    user_update_batch,
)


@pytest.fixture(scope="module")
def small_devices():
    config = DevicesConfig(n_parts=100, n_devices=100, diff_size=10, fanout=4)
    return config, build_devices_database(config)


@pytest.fixture(scope="module")
def small_bsma():
    config = BsmaConfig(n_users=120, friends_per_user=4, n_tweets=400)
    return config, build_bsma_database(config)


class TestDevicesWorkload:
    def test_figure11_ratios(self, small_devices):
        config, db = small_devices
        assert len(db.table("parts")) == config.n_parts
        assert len(db.table("devices")) == config.n_devices
        assert len(db.table("devices_parts")) == config.n_parts * config.fanout

    def test_selectivity_respected(self, small_devices):
        config, db = small_devices
        phones = sum(
            1 for _d, c in db.table("devices").rows_uncounted() if c == "phone"
        )
        assert phones == round(config.n_devices * config.selectivity)

    def test_fanout_exact(self, small_devices):
        config, db = small_devices
        per_part: dict[str, int] = {}
        for _did, pid in db.table("devices_parts").rows_uncounted():
            per_part[pid] = per_part.get(pid, 0) + 1
        assert set(per_part.values()) == {config.fanout}

    def test_deterministic_generation(self):
        config = DevicesConfig(n_parts=50, n_devices=50, diff_size=5, fanout=3)
        a = build_devices_database(config)
        b = build_devices_database(config)
        for name in ("parts", "devices", "devices_parts"):
            assert a.table(name).as_set() == b.table(name).as_set()

    def test_extra_join_tables(self):
        config = DevicesConfig(
            n_parts=50, n_devices=50, diff_size=5, fanout=3, joins=4
        )
        db = build_devices_database(config)
        assert db.has_table("r1") and db.has_table("r2")
        assert len(db.table("r1")) == len(db.table("devices_parts"))

    def test_views_evaluate(self, small_devices):
        config, db = small_devices
        flat = evaluate_plan(build_flat_view(db, config), db)
        agg = evaluate_plan(build_aggregate_view(db, config), db)
        assert len(flat) > 0
        assert len(agg) > 0
        assert len(agg) <= len(flat)

    def test_price_updates_are_real_changes(self, small_devices):
        config, db = small_devices
        engine = IdIvmEngine(db.copy())
        engine.db.counters = engine.db.counters  # fresh counters ok
        view = engine.define_view("V", build_aggregate_view(engine.db, config))
        n = apply_price_updates(engine, engine.db, config)
        assert n == config.diff_size
        report = engine.maintain()["V"]
        assert report.total_cost > 0
        assert view.table.as_set() == evaluate_plan(view.plan, engine.db).as_set()

    def test_mixed_batch_maintains_correctly(self):
        config = DevicesConfig(n_parts=60, n_devices=60, diff_size=5, fanout=3)
        db = build_devices_database(config)
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_aggregate_view(db, config))
        batch = mixed_modification_batch(db, config, updates=4, inserts=3, deletes=2)
        log_batch(engine, batch)
        engine.maintain()
        assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()

    def test_invalid_configs_rejected(self):
        with pytest.raises(WorkloadError):
            DevicesConfig(selectivity=0)
        with pytest.raises(WorkloadError):
            DevicesConfig(joins=1)
        with pytest.raises(WorkloadError):
            DevicesConfig(fanout=0)
        with pytest.raises(WorkloadError):
            DevicesConfig(n_parts=10, diff_size=20)


class TestBsmaWorkload:
    def test_figure9_ratios(self, small_bsma):
        config, db = small_bsma
        assert len(db.table("users")) == config.n_users
        assert len(db.table("microblog")) == config.n_tweets
        assert len(db.table("retweets")) == config.n_retweets
        assert len(db.table("mentions")) == config.n_mentions
        assert len(db.table("rel_event_microblog")) == config.n_event_links

    def test_all_queries_evaluate_nonempty(self, small_bsma):
        config, db = small_bsma
        for name, build in BSMA_QUERIES.items():
            result = evaluate_plan(build(db, config), db)
            assert len(result) > 0, name

    def test_updates_touch_existing_users(self, small_bsma):
        config, db = small_bsma
        batch = user_update_batch(db, config, n_updates=20)
        assert len(batch) == 20
        for (uid,), changes in batch:
            assert db.table("users").get_uncounted((uid,)) is not None
            assert set(changes) == {"tweetsnum", "favornum"}

    def test_each_query_maintainable(self, small_bsma):
        config, _ = small_bsma
        for name, build in BSMA_QUERIES.items():
            db = build_bsma_database(config)
            engine = IdIvmEngine(db)
            view = engine.define_view(name, build(db, config))
            for (uid,), changes in user_update_batch(db, config, 10):
                engine.log.update("users", (uid,), changes)
            engine.maintain()
            expected = evaluate_plan(view.plan, db).as_set()
            assert view.table.as_set() == expected, name
