"""Compiled ∆-script execution (:mod:`repro.core.compile`).

The backend's whole contract is *exactness*: a compiled closure must
produce the same rows AND the same per-phase access counts as the IR
interpreter — anything the compiler cannot lower with identical counted
behaviour falls back to the interpreter's own helpers.  These tests pin
that contract on the paper's devices workload, on every BSMA view, and
through both sharded execution backends, plus the :class:`ColumnarDiff`
batch representation the compiled path runs on.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine, ShardedEngine
from repro.core.compile import CompiledComputeDiffStep, compile_script
from repro.core.diffs import INSERT, ColumnarDiff, Diff, DiffSchema
from repro.core.engine import EXEC_BACKENDS
from repro.core.script import ComputeDiffStep
from repro.errors import DiffError
from repro.workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_bsma_database,
    build_devices_database,
    build_flat_view,
    log_user_updates,
)
from repro.workloads.devices import log_batch, mixed_modification_batch

DEV_CONFIG = DevicesConfig(n_parts=80, n_devices=80, diff_size=24)
BSMA_CONFIG = BsmaConfig(n_users=150)


def _phase_totals(report):
    """Zero-filtered per-phase counts (stale zero buckets dropped)."""
    return {
        name: counts.as_dict()
        for name, counts in report.phase_counts.items()
        if counts.total or counts.index_maintenance
    }


# ----------------------------------------------------------------------
# ColumnarDiff: the batch representation
# ----------------------------------------------------------------------
def _schema():
    return DiffSchema(INSERT, "t", ("k",), (), ("a", "b"))


class TestColumnarDiff:
    def test_from_rows_matches_diff_semantics(self):
        rows = [(1, "x", 2), (2, "y", 3), (1, "x", 2)]  # dup merges
        columnar = ColumnarDiff.from_rows(_schema(), rows)
        plain = Diff(_schema(), rows)
        assert columnar.rows == plain.rows
        assert len(columnar) == len(plain) == 2
        assert not columnar.is_empty()

    def test_from_rows_rejects_conflicts_and_arity(self):
        with pytest.raises(DiffError):
            ColumnarDiff.from_rows(_schema(), [(1, "x", 2), (1, "x", 99)])
        with pytest.raises(DiffError):
            ColumnarDiff.from_rows(_schema(), [(1, "x")])

    def test_column_data_is_wire_layout(self):
        columnar = ColumnarDiff.from_rows(_schema(), [(1, "x", 2), (2, "y", 3)])
        assert columnar.column_data() == [[1, 2], ["x", "y"], [2, 3]]

    def test_wire_columns_round_trip_lazily(self):
        cols = [[1, 2], ["x", "y"], [2, 3]]
        columnar = ColumnarDiff.from_wire_columns(_schema(), cols)
        assert len(columnar) == 2  # length without materializing rows
        assert columnar.rows == [(1, "x", 2), (2, "y", 3)]
        assert columnar.column_data() is cols  # adopted, not copied

    def test_from_diff_rewraps_without_copy(self):
        plain = Diff(_schema(), [(1, "x", 2)])
        columnar = ColumnarDiff.from_diff(plain)
        assert columnar.rows is plain.rows
        assert ColumnarDiff.from_diff(columnar) is columnar

    def test_row_accessors_inherited(self):
        columnar = ColumnarDiff.from_rows(_schema(), [(1, "x", 2)])
        row = columnar.rows[0]
        assert columnar.id_of(row) == (1,)
        assert columnar.post_value(row, "a") == "x"
        assert columnar.as_relation().rows == [(1, "x", 2)]

    def test_pickle_round_trip(self):
        # The process shard backend pickles result diffs; the ``rows``
        # property shadows Diff's slot, so this exercises __reduce__.
        columnar = ColumnarDiff.from_wire_columns(
            _schema(), [[1, 2], ["x", "y"], [2, 3]]
        )
        back = pickle.loads(pickle.dumps(columnar))
        assert isinstance(back, ColumnarDiff)
        assert back.schema.columns == columnar.schema.columns
        assert back.rows == columnar.rows


# ----------------------------------------------------------------------
# backend selection + script caching
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        db = build_devices_database(DEV_CONFIG)
        with pytest.raises(ValueError):
            IdIvmEngine(db, exec_backend="jit")
        assert set(EXEC_BACKENDS) == {"interp", "compiled"}

    def test_define_view_caches_compiled_script(self):
        db = build_devices_database(DEV_CONFIG)
        engine = IdIvmEngine(db, exec_backend="compiled")
        view = engine.define_view("V", build_flat_view(db, DEV_CONFIG))
        assert view.compiled_script is not None
        assert view.script_for("compiled") is view.compiled_script
        assert view.script_for("interp") is view.generated.script

    def test_interp_engine_skips_compilation(self):
        db = build_devices_database(DEV_CONFIG)
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_flat_view(db, DEV_CONFIG))
        assert view.compiled_script is None
        assert view.script_for("compiled") is view.generated.script

    def test_compile_script_replaces_only_compute_steps(self):
        db = build_devices_database(DEV_CONFIG)
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build_aggregate_view(db, DEV_CONFIG))
        compiled = compile_script(view.generated)
        assert compiled.view_node_id == view.generated.script.view_node_id
        pairs = list(zip(compiled.steps, view.generated.script.steps))
        assert len(pairs) == len(view.generated.script.steps)
        swapped = 0
        for new, old in pairs:
            if type(old) is ComputeDiffStep:
                assert isinstance(new, CompiledComputeDiffStep)
                assert new.name == old.name
                assert new.schema is old.schema
                swapped += 1
            else:
                assert new is old  # APPLY/aggregate steps are shared
        assert swapped > 0


# ----------------------------------------------------------------------
# equivalence: devices
# ----------------------------------------------------------------------
def _run_devices(exec_backend, build_view, rounds=3, mixed=False):
    db = build_devices_database(DEV_CONFIG)
    engine = IdIvmEngine(db, exec_backend=exec_backend)
    view = engine.define_view("V", build_view(db, DEV_CONFIG))
    out = []
    for r in range(rounds):
        if mixed:
            batch = mixed_modification_batch(
                db, DEV_CONFIG, updates=8, inserts=5, deletes=3, round_seed=r
            )
            log_batch(engine, batch)
        else:
            apply_price_updates(engine, db, DEV_CONFIG, round_seed=r)
        report = engine.maintain()["V"]
        out.append((sorted(view.table.rows_uncounted()), report))
    assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
    return out


@pytest.mark.parametrize("mixed", [False, True], ids=["updates", "mixed"])
@pytest.mark.parametrize(
    "build_view", [build_flat_view, build_aggregate_view], ids=["flat", "agg"]
)
def test_devices_counts_match_interpreter_exactly(build_view, mixed):
    base = _run_devices("interp", build_view, mixed=mixed)
    compiled = _run_devices("compiled", build_view, mixed=mixed)
    for (rows_i, rep_i), (rows_c, rep_c) in zip(base, compiled):
        assert rows_c == rows_i
        assert _phase_totals(rep_c) == _phase_totals(rep_i)
        assert rep_c.total_cost == rep_i.total_cost


def test_compiled_report_reconciles_with_cost_model():
    # COST503 leg: the symbolic model's predictions must hold for the
    # compiled backend without any compiled-specific calibration.
    from repro.analysis.cost import reconcile_report

    for _rows, report in _run_devices("compiled", build_flat_view):
        assert report.predicted_counts is not None
        assert reconcile_report(report) == []


# ----------------------------------------------------------------------
# equivalence: every BSMA view
# ----------------------------------------------------------------------
def _run_bsma(engine_factory, rounds=3):
    db = build_bsma_database(BSMA_CONFIG)
    engine = engine_factory(db)
    try:
        views = {
            name: engine.define_view(name, build(db, BSMA_CONFIG))
            for name, build in BSMA_QUERIES.items()
        }
        out = []
        for r in range(rounds):
            log_user_updates(engine, db, BSMA_CONFIG, 20, round_seed=r)
            reports = engine.maintain()
            out.append(
                {
                    name: (
                        sorted(view.table.rows_uncounted()),
                        _phase_totals(reports[name]),
                    )
                    for name, view in views.items()
                }
            )
        for view in views.values():
            assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
        return out
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def test_bsma_views_counts_match_interpreter_exactly():
    base = _run_bsma(IdIvmEngine)
    compiled = _run_bsma(lambda db: IdIvmEngine(db, exec_backend="compiled"))
    assert set(base[0]) == set(BSMA_QUERIES)
    for round_b, round_c in zip(base, compiled):
        for name in round_b:
            rows_b, counts_b = round_b[name]
            rows_c, counts_c = round_c[name]
            assert rows_c == rows_b, name
            assert counts_c == counts_b, name


# ----------------------------------------------------------------------
# equivalence: through both shard backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shard_backend", ["thread", "process"])
def test_sharded_compiled_matches_interpreter(shard_backend):
    base = _run_bsma(IdIvmEngine, rounds=2)
    sharded = _run_bsma(
        lambda db: ShardedEngine(
            db, shards=2, backend=shard_backend, exec_backend="compiled"
        ),
        rounds=2,
    )
    for round_b, round_s in zip(base, sharded):
        for name in round_b:
            rows_b, counts_b = round_b[name]
            rows_s, counts_s = round_s[name]
            assert rows_s == rows_b, name
            assert counts_s == counts_b, name
