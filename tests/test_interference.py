"""Pass 6 (interference, RACE6xx) + the dynamic write-set race detector.

The two detectors check the same claim — per-round shard disjointness of
write footprints — at different times: the static pass at lint/define
time from anchor-key provenance, the dynamic ``race_check`` mode of
:class:`ShardedEngine` at run time from the workers' captured
write-sets.  The central fixture here is a deliberately mis-routed view
(``GeneratedPlan.route_override`` forces the anchor the router rejects):
BOTH detectors must flag it, on both execution backends.
"""

from __future__ import annotations

import dataclasses
import os
from types import SimpleNamespace

import pytest

from repro.algebra.evaluate import evaluate_plan
from repro.algebra import scan
from repro.analysis import AnalysisReport, analyze_generated
from repro.analysis.interference import check_round
from repro.core.compile import compile_script
from repro.core.diffs import Diff, DiffSchema
from repro.core.generator import ScriptGenerator
from repro.core.ir import Compute, DiffSource, ProbeJoin
from repro.core.schema_gen import generate_base_schemas
from repro.core.script import ApplyDiffStep, ComputeDiffStep, DeltaScript
from repro.core.sharded import ShardedEngine
from repro.errors import ShardRaceError
from repro.expr import Col
from repro.shard.router import force_route
from repro.storage import Database
from repro.workloads.devices import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_database,
    build_flat_view,
)

DEV_CONFIG = DevicesConfig(n_parts=80, n_devices=80, diff_size=24)

BACKENDS = tuple(
    b.strip()
    for b in os.environ.get("REPRO_BACKEND", "thread,process").split(",")
    if b.strip()
)


def generate(db, plan, name="V"):
    generator = ScriptGenerator(name, plan)
    return generator.generate(generate_base_schemas(generator.plan, db))


def race_diags(generated, db, script=None):
    report = analyze_generated(
        generated, db=db, script=script, names=["interference"]
    )
    return [d for d in report.diagnostics if d.rule_id.startswith("RACE")]


def make_misrouted(cfg=DEV_CONFIG):
    """The fixture: the devices aggregate view γ(did; sum(price)) with
    maintenance rounds FORCED onto anchor ``parts``.  The router proves
    γ drops the parts anchor from its group keys and would broadcast;
    the override runs those rounds parallel anyway — two shards then
    read-modify-write the same device's group row."""
    db = build_database(cfg)
    plan = build_aggregate_view(db, cfg)
    generated = generate(db, plan, name="agg")
    return db, plan, dataclasses.replace(generated, route_override="parts")


# ----------------------------------------------------------------------
# static: shipped views stay quiet
# ----------------------------------------------------------------------
class TestStaysQuiet:
    @pytest.mark.parametrize("build", [build_flat_view, build_aggregate_view])
    def test_devices_views_have_no_race_findings(self, build):
        db = build_database(DEV_CONFIG)
        generated = generate(db, build(db, DEV_CONFIG))
        assert race_diags(generated, db) == []

    @pytest.mark.parametrize("build", [build_flat_view, build_aggregate_view])
    def test_compiled_scripts_analyze_identically(self, build):
        """CompiledComputeDiffStep subclasses ComputeDiffStep: the pass
        must hold on the compiled execution backend's script too."""
        db = build_database(DEV_CONFIG)
        generated = generate(db, build(db, DEV_CONFIG))
        compiled = compile_script(generated)
        assert race_diags(generated, db, script=compiled) == []

    def test_pass_skips_without_database(self):
        db = build_database(DEV_CONFIG)
        generated = generate(db, build_flat_view(db, DEV_CONFIG))
        assert race_diags(generated, db=None) == []


# ----------------------------------------------------------------------
# static: the mis-routed fixture is flagged (RACE601)
# ----------------------------------------------------------------------
class TestForcedRouteStatic:
    def test_race601_on_forced_anchor(self):
        db, _, forced = make_misrouted()
        diags = race_diags(forced, db)
        r601 = [d for d in diags if d.rule_id == "RACE601"]
        assert r601, "forced mis-route must produce RACE601"
        assert all(d.severity == "error" for d in r601)
        # The γ RMW on the view output (and its operator cache) is the
        # characteristic overlap: group keys (did) dropped the anchor.
        gamma = [d for d in r601 if "group keys ['did']" in d.message]
        assert gamma
        assert any("anchor parts" in d.message for d in gamma)
        # The price-update round specifically (the one the dynamic
        # fixture drives) is among the flagged round shapes.
        assert any("base_u_parts__price" in d.location for d in r601)

    def test_race601_on_compiled_script_too(self):
        db, _, forced = make_misrouted()
        compiled = compile_script(forced)
        diags = race_diags(forced, db, script=compiled)
        assert any(d.rule_id == "RACE601" for d in diags)

    def test_unforced_view_is_quiet(self):
        db, _, forced = make_misrouted()
        unforced = dataclasses.replace(forced, route_override=None)
        assert race_diags(unforced, db) == []


# ----------------------------------------------------------------------
# static: capture coverage (RACE604)
# ----------------------------------------------------------------------
class TestCaptureCoverage:
    def test_missing_opcache_spec_fires_race604(self):
        db = build_database(DEV_CONFIG)
        generated = generate(db, build_aggregate_view(db, DEV_CONFIG))
        stripped = dataclasses.replace(generated, opcache_specs=[])
        diags = race_diags(stripped, db)
        r604 = [d for d in diags if d.rule_id == "RACE604"]
        assert r604 and all(d.severity == "error" for d in r604)
        assert any("op-cache" in d.message for d in r604)

    def test_missing_cache_spec_fires_race604(self):
        db = build_database(DEV_CONFIG)
        generated = generate(db, build_aggregate_view(db, DEV_CONFIG))
        stripped = dataclasses.replace(generated, cache_specs=[])
        diags = race_diags(stripped, db)
        assert any(
            d.rule_id == "RACE604" and "APPLY" in d.location for d in diags
        )

    def test_race604_needs_no_database(self):
        """Coverage is a property of the GeneratedPlan alone."""
        db = build_database(DEV_CONFIG)
        generated = generate(db, build_aggregate_view(db, DEV_CONFIG))
        stripped = dataclasses.replace(generated, opcache_specs=[])
        assert any(
            d.rule_id == "RACE604" for d in race_diags(stripped, db=None)
        )

    def test_complete_specs_stay_quiet(self):
        db = build_database(DEV_CONFIG)
        generated = generate(db, build_aggregate_view(db, DEV_CONFIG))
        assert race_diags(generated, db=None) == []


# ----------------------------------------------------------------------
# static: seeded RACE602 / RACE603 rounds (check_round directly)
# ----------------------------------------------------------------------
def _seeded_env():
    """A one-table world with a forced parallel route to feed check_round.

    Table t(k, v); the round's instance is an update diff on t carrying
    the anchor key in its IDs.  The probed/written materialization is
    plan node 7, registered as a cache spec so reads of it count.
    """
    db = Database()
    db.create_table(
        "t", ("k", "v"), ("k",), nullable=(), types={"k": "int", "v": "int"}
    )
    db.table("t").load([(1, 10)])
    base = DiffSchema("u", "t", ("k",), post_attrs=("v",))
    instances = {"d_t": Diff(base, [(1, 99)])}
    node = scan(db, "t")
    node.node_id = 7
    generated = SimpleNamespace(
        view_name="V",
        cache_specs=[SimpleNamespace(node_id=7, name="probe_cache")],
        opcache_specs=[],
    )
    return db, base, instances, node, generated


def _run_seeded(steps, db, instances, generated):
    script = DeltaScript(steps, view_node_id=99)
    route = force_route(script, instances, db, "t")
    report = AnalysisReport()
    check_round(script, instances, db, route, generated, report, "seeded")
    return report


class TestSeededRounds:
    def test_race602_non_anchored_read_of_written_cache(self):
        db, base, instances, node, generated = _seeded_env()
        # Probe of node 7 bound on a NON-key column: the read does not
        # carry the anchor, while the APPLY writes node 7 (anchored).
        probe = ProbeJoin(
            left=DiffSource("d_t", base),
            node=node,
            state="pre",
            on=[("v__post", "v")],
            keep=[("w", "v")],
        )
        steps = [
            ComputeDiffStep(
                "d1", DiffSchema("+", "t", ("k",)), probe, "view_diff"
            ),
            ApplyDiffStep("d_t", 7, "probe_cache", "cache_update"),
        ]
        report = _run_seeded(steps, db, instances, generated)
        assert sorted(report.rule_ids()) == ["RACE602"]
        [diag] = report.diagnostics
        assert diag.severity == "error"
        assert "probe_cache" in diag.message

    def test_race603_routed_reader_under_unanchored_writer(self):
        db, base, instances, node, generated = _seeded_env()
        # d2 projects the anchor key away -> its APPLY write is not
        # anchored (RACE601); a second statement reads the same cache
        # through an anchored probe -> broadcast-window RACE603.
        lossy = Compute(DiffSource("d_t", base), [("w", Col("v__post"))])
        anchored_probe = ProbeJoin(
            left=DiffSource("d_t", base),
            node=node,
            state="pre",
            on=[("k", "k")],
            keep=[("w", "v")],
        )
        steps = [
            ComputeDiffStep(
                "d2", DiffSchema("+", "t", ("w",)), lossy, "cache_diff"
            ),
            ComputeDiffStep(
                "d3",
                DiffSchema("+", "t", ("k",)),
                anchored_probe,
                "view_diff",
            ),
            ApplyDiffStep("d2", 7, "probe_cache", "cache_update"),
        ]
        report = _run_seeded(steps, db, instances, generated)
        assert sorted(report.rule_ids()) == ["RACE601", "RACE603"]
        [r603] = [d for d in report.diagnostics if d.rule_id == "RACE603"]
        assert r603.severity == "warning"
        assert "broadcast-window" in r603.message

    def test_anchored_round_is_silent(self):
        db, base, instances, node, generated = _seeded_env()
        anchored_probe = ProbeJoin(
            left=DiffSource("d_t", base),
            node=node,
            state="pre",
            on=[("k", "k")],
            keep=[("w", "v")],
        )
        steps = [
            ComputeDiffStep(
                "d3",
                DiffSchema("+", "t", ("k",)),
                anchored_probe,
                "view_diff",
            ),
            ApplyDiffStep("d_t", 7, "probe_cache", "cache_update"),
        ]
        report = _run_seeded(steps, db, instances, generated)
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# dynamic: the race detector on live engines
# ----------------------------------------------------------------------
def _misrouted_engine(backend, race_check):
    cfg = DEV_CONFIG
    db = build_database(cfg)
    plan = build_aggregate_view(db, cfg)
    engine = ShardedEngine(db, shards=2, backend=backend, race_check=race_check)
    view = engine.define_view("agg", plan)
    engine.maintain()
    view.generated.route_override = "parts"
    return engine, db, cfg


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicDetector:
    def test_strict_raises_shard_race_error(self, backend):
        engine, db, cfg = _misrouted_engine(backend, race_check="strict")
        try:
            apply_price_updates(engine, db, cfg, round_seed=1)
            with pytest.raises(ShardRaceError) as exc_info:
                engine.maintain()
            overlaps = exc_info.value.overlaps
            assert overlaps
            # Each overlap names (table tag, key, writing shards).
            for tag, key, shards in overlaps:
                assert isinstance(tag, str) and isinstance(key, tuple)
                assert len(shards) > 1
            # The γ output cache is among the contended tables.
            assert any(tag == "c0" for tag, _, _ in overlaps)
        finally:
            engine.close()

    def test_default_mode_records_overlaps_without_raising(self, backend):
        engine, db, cfg = _misrouted_engine(backend, race_check=True)
        try:
            apply_price_updates(engine, db, cfg, round_seed=1)
            report = engine.maintain()["agg"]
            assert report.parallel and report.anchor == "parts"
            assert report.race_overlaps
        finally:
            engine.close()

    def test_clean_parallel_round_passes_strict(self, backend):
        """The flat view's price-update rounds carry a real router proof:
        strict race_check must find nothing and the view must still
        match the recompute oracle."""
        cfg = DEV_CONFIG
        db = build_database(cfg)
        engine = ShardedEngine(
            db, shards=2, backend=backend, race_check="strict"
        )
        try:
            view = engine.define_view("flat", build_flat_view(db, cfg))
            for seed in range(2):
                apply_price_updates(engine, db, cfg, round_seed=seed)
                report = engine.maintain()["flat"]
                assert report.race_overlaps == []
                assert report.uncaptured_tables == []
            assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
        finally:
            engine.close()


def test_race_check_argument_is_validated():
    db = build_database(DevicesConfig(n_parts=20, n_devices=20, diff_size=2))
    with pytest.raises(Exception):
        ShardedEngine(db, shards=2, race_check="loose")
