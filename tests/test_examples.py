"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples self-verify against recomputation; scale is kept small
    # enough that each finishes in seconds.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_examples_directory_has_quickstart():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
