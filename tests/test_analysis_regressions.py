"""Satellite: every pre-fix bug class in tests/regressions/ must map to
its analyzer diagnostic.

Each corpus case pinned a real divergence the fuzzer found.  The fixes
live in the engine, so replaying the case is clean — these tests instead
demonstrate that the *static* analyzer recognizes each bug class, either
directly on the case (where the hazard is structural: mixed-type
comparisons, NULL join keys, unroutable aggregates) or on a de-fixed /
seeded variant reconstructing the pre-fix shape (the σ update-split and
the min/max cache placement, whose fixes changed the generated output).
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisContext, run_passes
from repro.core.generator import ScriptGenerator
from repro.core.rules.aggregate import AssociativeAggregateStep
from repro.core.schema_gen import generate_base_schemas
from repro.core.ir import Filter
from repro.core.script import ComputeDiffStep
from repro.algebra.plan import GroupBy
from repro.crosscheck.corpus import DEFAULT_CORPUS_DIR, corpus_files, load_corpus_case
from repro.crosscheck.runner import analyze_case
from repro.crosscheck.spec import build_database, build_plan
from repro.expr import And, Arith, Call, Cmp, Not, Or


def case_named(name: str) -> dict:
    return load_corpus_case(DEFAULT_CORPUS_DIR / f"{name}.json")


def generated_for(case):
    db = build_database(case)
    generator = ScriptGenerator("V", build_plan(case["plan"], db))
    return generator.generate(generate_base_schemas(generator.plan, db)), db


def context_for(generated, db=None) -> AnalysisContext:
    return AnalysisContext(
        plan=generated.plan,
        script=generated.script,
        base_schemas=list(generated.base_schemas),
        generated=generated,
        db=db,
    )


def test_corpus_is_present():
    names = {p.stem for p in corpus_files()}
    assert {
        "mixed_type_cmp",
        "null_join",
        "select_split",
        "min_extremum",
        "gamma_expansion",
    } <= names


def test_every_corpus_case_analyzes_clean_of_errors():
    """Post-fix, the analyzer agrees with the engine: no error-severity
    diagnostics on any shipped reproducer."""
    for path in corpus_files():
        report = analyze_case(load_corpus_case(path))
        assert report.errors == [], f"{path.stem}: {report.render()}"


def test_mixed_type_cmp_yields_tc101():
    report = analyze_case(case_named("mixed_type_cmp"))
    assert any(d.rule_id == "TC101" for d in report.diagnostics)


def test_null_join_yields_sc307():
    report = analyze_case(case_named("null_join"))
    assert any(d.rule_id == "SC307" for d in report.diagnostics)


def _defix(expr):
    """Undo the σ update-split fix: Not(is_true(φ)) back to plain Not(φ)."""
    if isinstance(expr, Not):
        if isinstance(expr.item, Call) and expr.item.func == "is_true":
            return Not(_defix(expr.item.args[0]))
        return Not(_defix(expr.item))
    if isinstance(expr, And):
        return And([_defix(i) for i in expr.items])
    if isinstance(expr, Or):
        return Or([_defix(i) for i in expr.items])
    if isinstance(expr, Call):
        return Call(expr.func, tuple(_defix(a) for a in expr.args))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _defix(expr.left), _defix(expr.right))
    if isinstance(expr, Arith):
        return Arith(expr.op, _defix(expr.left), _defix(expr.right))
    return expr


def test_select_split_defixed_yields_tc103():
    """The shipped script (post-fix) is TC103-clean; rewriting its split
    complements back to plain Not reconstructs the pre-fix bug and the
    analyzer must catch it."""
    case = case_named("select_split")
    generated, db = generated_for(case)
    clean = run_passes(context_for(generated), ["typecheck"])
    assert not any(d.rule_id == "TC103" for d in clean.diagnostics)

    rewritten = 0
    for step in generated.script.steps:
        if not isinstance(step, ComputeDiffStep):
            continue
        for node in step.ir.walk():
            if isinstance(node, Filter):
                defixed = _defix(node.predicate)
                if repr(defixed) != repr(node.predicate):
                    node.predicate = defixed
                    rewritten += 1
    assert rewritten, "expected at least one is_true-wrapped complement"
    report = run_passes(context_for(generated), ["typecheck"])
    assert any(
        d.rule_id == "TC103" and d.severity == "error" for d in report.diagnostics
    )


@pytest.mark.parametrize("name", ["min_extremum", "gamma_expansion"])
def test_min_gamma_cases_would_flag_associative_cache(name):
    """Seeding the pre-fix placement — an associative delta step over the
    min γ — must produce SC306; the shipped general-rule script is clean."""
    case = case_named(name)
    generated, db = generated_for(case)
    assert not any(
        d.rule_id == "SC306"
        for d in run_passes(context_for(generated), ["script"]).diagnostics
    )
    gnode = next(
        n for n in generated.plan.walk()
        if isinstance(n, GroupBy) and any(a.func in ("min", "max") for a in n.aggs)
    )
    bad_step = AssociativeAggregateStep(gnode, [], "opc", "g", "cache_diff")
    generated.script.steps.append(bad_step)
    report = run_passes(context_for(generated), ["script"])
    assert any(d.rule_id == "SC306" for d in report.diagnostics)


@pytest.mark.parametrize("name", ["min_extremum", "gamma_expansion"])
def test_min_gamma_cases_yield_sh401(name):
    """The general rule forces broadcast: the shard pass must say so."""
    case = case_named(name)
    generated, db = generated_for(case)
    report = run_passes(context_for(generated, db=db), ["shard"])
    assert any(d.rule_id == "SH401" for d in report.diagnostics)
