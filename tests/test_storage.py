"""Unit tests for the storage substrate (tables, indexes, counters)."""

import pytest

from repro.errors import IntegrityError, SchemaError, UnknownColumnError, UnknownTableError
from repro.storage import CounterSet, Database, Table, TableSchema


@pytest.fixture
def parts() -> Table:
    table = Table(TableSchema("parts", ("pid", "price"), ("pid",)))
    table.load([("P1", 10), ("P2", 20), ("P3", 30)])
    return table


class TestTableSchema:
    def test_positions_and_key(self):
        schema = TableSchema("r", ("a", "b", "c"), ("a", "b"))
        assert schema.position("c") == 2
        assert schema.key_of((1, 2, 3)) == (1, 2)
        assert schema.non_key_columns == ("c",)

    def test_rejects_missing_key_column(self):
        with pytest.raises(SchemaError):
            TableSchema("r", ("a",), ("b",))

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("r", ("a", "a"), ("a",))

    def test_rejects_empty_key(self):
        with pytest.raises(SchemaError):
            TableSchema("r", ("a",), ())

    def test_unknown_column(self):
        schema = TableSchema("r", ("a",), ("a",))
        with pytest.raises(UnknownColumnError):
            schema.position("zzz")

    def test_project(self):
        schema = TableSchema("r", ("a", "b", "c"), ("a",))
        assert schema.project((1, 2, 3), ("c", "a")) == (3, 1)


class TestTableBasics:
    def test_insert_get(self, parts):
        assert parts.get(("P1",)) == ("P1", 10)
        assert parts.get(("P9",)) is None
        assert len(parts) == 3

    def test_duplicate_key_rejected(self, parts):
        with pytest.raises(IntegrityError):
            parts.insert(("P1", 99))

    def test_update(self, parts):
        old = parts.update_key(("P1",), {"price": 11})
        assert old == ("P1", 10)
        assert parts.get(("P1",)) == ("P1", 11)

    def test_update_missing_key_returns_none(self, parts):
        assert parts.update_key(("P9",), {"price": 1}) is None

    def test_update_key_column_rejected(self, parts):
        with pytest.raises(SchemaError):
            parts.update_key(("P1",), {"pid": "P9"})

    def test_delete(self, parts):
        assert parts.delete_key(("P2",)) == ("P2", 20)
        assert parts.get(("P2",)) is None
        assert parts.delete_key(("P2",)) is None

    def test_scan(self, parts):
        assert sorted(parts.scan()) == [("P1", 10), ("P2", 20), ("P3", 30)]

    def test_wrong_arity_rejected(self, parts):
        with pytest.raises(SchemaError):
            parts.insert(("P9",))


class TestSecondaryIndexes:
    def test_lookup_via_secondary_index(self):
        table = Table(TableSchema("dp", ("did", "pid"), ("did", "pid")))
        table.load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
        table.create_index(("pid",))
        rows = table.lookup(("pid",), ("P1",))
        assert sorted(rows) == [("D1", "P1"), ("D2", "P1")]

    def test_auto_index_creation(self):
        table = Table(TableSchema("dp", ("did", "pid"), ("did", "pid")), auto_index=True)
        table.load([("D1", "P1"), ("D2", "P1")])
        assert not table.has_index(("pid",))
        assert len(table.lookup(("pid",), ("P1",))) == 2
        assert table.has_index(("pid",))

    def test_no_auto_index_falls_back_to_scan(self):
        counters = CounterSet()
        table = Table(
            TableSchema("dp", ("did", "pid"), ("did", "pid")),
            counters=counters,
            auto_index=False,
        )
        table.load([("D1", "P1"), ("D2", "P1"), ("D3", "P2")])
        rows = table.lookup(("pid",), ("P1",))
        assert len(rows) == 2
        assert counters.total.tuple_reads == 3  # full scan
        assert counters.total.index_lookups == 0

    def test_index_maintained_across_writes(self):
        table = Table(TableSchema("dp", ("did", "pid"), ("did", "pid")))
        table.create_index(("pid",))
        table.insert(("D1", "P1"))
        table.insert(("D2", "P1"))
        table.delete_key(("D1", "P1"))
        assert table.lookup(("pid",), ("P1",)) == [("D2", "P1")]

    def test_index_maintained_across_updates(self):
        table = Table(TableSchema("parts", ("pid", "cat"), ("pid",)))
        table.create_index(("cat",))
        table.insert(("P1", "phone"))
        table.update_key(("P1",), {"cat": "tablet"})
        assert table.lookup(("cat",), ("phone",)) == []
        assert table.lookup(("cat",), ("tablet",)) == [("P1", "tablet")]


class TestCounters:
    def test_pk_lookup_costs(self, parts):
        parts.counters.reset()
        parts.get(("P1",))
        assert parts.counters.total.index_lookups == 1
        assert parts.counters.total.tuple_reads == 1

    def test_miss_costs_one_lookup(self, parts):
        parts.counters.reset()
        parts.get(("P9",))
        assert parts.counters.total.index_lookups == 1
        assert parts.counters.total.tuple_reads == 0

    def test_secondary_lookup_costs_one_plus_m(self):
        table = Table(TableSchema("dp", ("did", "pid"), ("did", "pid")))
        table.load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
        table.create_index(("pid",))
        table.counters.reset()
        table.lookup(("pid",), ("P1",))
        assert table.counters.total.index_lookups == 1
        assert table.counters.total.tuple_reads == 2

    def test_scan_costs_n_reads(self, parts):
        parts.counters.reset()
        list(parts.scan())
        assert parts.counters.total.tuple_reads == 3
        assert parts.counters.total.index_lookups == 0

    def test_write_costs(self, parts):
        parts.counters.reset()
        parts.insert(("P4", 40))
        parts.update_key(("P1",), {"price": 11})
        parts.delete_key(("P2",))
        assert parts.counters.total.tuple_writes == 3
        assert parts.counters.total.index_lookups == 3

    def test_phases(self, parts):
        parts.counters.reset()
        with parts.counters.phase("view_update"):
            parts.get(("P1",))
        parts.get(("P2",))
        snap = parts.counters.snapshot()
        assert snap["view_update"].index_lookups == 1
        assert snap["default"].index_lookups == 1
        assert snap["__total__"].index_lookups == 2

    def test_nested_phases_attribute_to_innermost(self, parts):
        parts.counters.reset()
        with parts.counters.phase("outer"):
            with parts.counters.phase("inner"):
                parts.get(("P1",))
        snap = parts.counters.snapshot()
        assert snap["inner"].index_lookups == 1
        assert "outer" not in snap

    def test_uncounted_helpers(self, parts):
        parts.counters.reset()
        parts.rows_uncounted()
        parts.get_uncounted(("P1",))
        assert parts.counters.total.total == 0


class TestDatabase:
    def test_create_and_fetch(self):
        db = Database()
        db.create_table("r", ("a", "b"), ("a",))
        assert db.table("r").schema.columns == ("a", "b")
        assert db.has_table("r")
        with pytest.raises(UnknownTableError):
            db.table("zzz")

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("r", ("a",), ("a",))
        with pytest.raises(SchemaError):
            db.create_table("r", ("a",), ("a",))

    def test_shared_counters(self):
        db = Database()
        r = db.create_table("r", ("a",), ("a",))
        s = db.create_table("s", ("a",), ("a",))
        r.load([(1,)])
        s.load([(2,)])
        r.get((1,))
        s.get((2,))
        assert db.counters.total.index_lookups == 2

    def test_copy_is_independent(self):
        db = Database()
        r = db.create_table("r", ("a", "b"), ("a",))
        r.load([(1, 10)])
        clone = db.copy()
        clone.table("r").update_key((1,), {"b": 99})
        assert db.table("r").get_uncounted((1,)) == (1, 10)
        assert clone.table("r").get_uncounted((1,)) == (1, 99)

    def test_copy_does_not_count(self):
        db = Database()
        r = db.create_table("r", ("a",), ("a",))
        r.load([(i,) for i in range(100)])
        db.counters.reset()
        db.copy()
        assert db.counters.total.total == 0

    def test_foreign_keys(self):
        db = Database()
        db.create_table("parent", ("id",), ("id",))
        db.create_table("child", ("cid", "pid"), ("cid",))
        db.add_foreign_key("child", ("pid",), "parent")
        fks = db.foreign_keys_of("child")
        assert len(fks) == 1
        assert fks[0].parent_table == "parent"
        assert db.foreign_keys_of("parent") == []


class TestIndexMaintenanceAccounting:
    """Cost-accounting consistency of the write paths (paper Section 6).

    Index maintenance is tracked in its own counter (excluded from the
    paper's ``total`` per the Section 7.2 courtesy), uniformly across
    every counted write path; the ``*_uncounted`` paths the modification
    log uses must stay exactly count-neutral.
    """

    def _table(self):
        db = Database()
        t = db.create_table("r", ("k", "a", "b"), ("k",))
        t.load([(1, 10, "x"), (2, 20, "y"), (3, 30, "z")])
        t.create_index(("a",))
        t.create_index(("b",))
        return db, t

    def test_counted_writes_track_index_maintenance(self):
        db, t = self._table()
        db.counters.reset()
        t.insert((4, 40, "w"))          # 1 entry added per index
        assert db.counters.total.index_maintenance == 2
        t.update_key((4,), {"a": 41})   # remove + add per index
        assert db.counters.total.index_maintenance == 6
        t.replace_row((4,), (4, 42, "w"))
        assert db.counters.total.index_maintenance == 10
        t.write_at((4,), {"b": "v"})
        assert db.counters.total.index_maintenance == 14
        t.delete_key((4,))
        assert db.counters.total.index_maintenance == 16
        t.insert_checked((4, 40, "w"))
        assert db.counters.total.index_maintenance == 18
        t.delete_at((4,))
        assert db.counters.total.index_maintenance == 20
        # The paper's headline metric is unaffected.
        assert db.counters.total.total == (
            db.counters.total.index_lookups
            + db.counters.total.tuple_reads
            + db.counters.total.tuple_writes
        )

    def test_duplicate_insert_checked_is_maintenance_free(self):
        db, t = self._table()
        db.counters.reset()
        assert t.insert_checked((1, 10, "x")) is False
        assert db.counters.total.index_maintenance == 0
        assert db.counters.total.tuple_writes == 0

    def test_uncounted_modlog_paths_are_count_neutral(self):
        from repro.core.modlog import ModificationLog

        db, t = self._table()
        log = ModificationLog(db)
        db.counters.reset()
        log.insert("r", (5, 50, "q"))
        log.update("r", (5,), {"a": 51})
        log.delete("r", (5,))
        snap = db.counters.total
        assert (
            snap.index_lookups,
            snap.tuple_reads,
            snap.tuple_writes,
            snap.index_maintenance,
        ) == (0, 0, 0, 0)
        # The indexes were still maintained correctly, just uncounted.
        assert t.lookup(("a",), (10,)) == [(1, 10, "x")]
        db.counters.reset()
        t.load([(6, 60, "p")])
        assert db.counters.total.index_maintenance == 0

    def test_index_maintenance_excluded_from_total(self):
        from repro.storage import AccessCounts

        counts = AccessCounts(1, 2, 3, 99)
        assert counts.total == 6
        assert counts.as_dict()["index_maintenance"] == 99
        assert AccessCounts.from_dict(counts.as_dict()) == counts
        delta = counts - AccessCounts(0, 0, 0, 9)
        assert delta.index_maintenance == 90


class TestWriteSetCapture:
    """begin_capture / end_capture / replay_writes edge cases.

    These primitives carry the process-backend write-set merge AND the
    dynamic shard race detector; their edge semantics (no nesting, replay
    is uncounted, op order is the mutation order) are load-bearing.
    """

    def _fresh(self):
        table = Table(TableSchema("parts", ("pid", "price"), ("pid",)))
        table.load([("P1", 10), ("P2", 20)])
        return table

    def test_nested_capture_is_an_error(self):
        from repro.errors import ScriptError

        table = self._fresh()
        table.begin_capture()
        with pytest.raises(ScriptError):
            table.begin_capture()
        # The original capture stays armed and intact.
        table.insert(("P3", 30))
        ops = table.end_capture()
        assert ops == [("s", ("P3",), ("P3", 30))]

    def test_end_capture_without_begin_is_empty(self):
        table = self._fresh()
        assert table.end_capture() == []

    def test_capture_stops_recording_after_end(self):
        table = self._fresh()
        table.begin_capture()
        table.insert(("P3", 30))
        ops = table.end_capture()
        table.insert(("P4", 40))
        assert ops == [("s", ("P3",), ("P3", 30))]

    def test_replay_is_count_neutral(self):
        source = self._fresh()
        source.begin_capture()
        source.insert(("P3", 30))
        source.update_key(("P1",), {"price": 11})
        source.delete_key(("P2",))
        ops = source.end_capture()

        replica = self._fresh()
        counters = replica.counters
        before = counters.total.total + counters.total.index_maintenance
        replica.replay_writes(ops)
        after = counters.total.total + counters.total.index_maintenance
        assert after == before, "replay must not count work twice"
        assert replica.as_set() == source.as_set()

    def test_replay_preserves_op_order(self):
        """delete + reinsert of the same key must land in capture order,
        or the replica converges to the wrong row."""
        source = self._fresh()
        source.begin_capture()
        source.delete_key(("P1",))
        source.insert(("P1", 99))
        source.update_key(("P1",), {"price": 100})
        ops = source.end_capture()
        assert [op[0] for op in ops] == ["d", "s", "s"]

        replica = self._fresh()
        replica.replay_writes(ops)
        assert replica.get(("P1",)) == ("P1", 100)
        assert replica.as_set() == source.as_set()

    def test_replay_is_idempotent(self):
        source = self._fresh()
        source.begin_capture()
        source.insert(("P3", 30))
        source.delete_key(("P2",))
        ops = source.end_capture()
        replica = self._fresh()
        replica.replay_writes(ops)
        replica.replay_writes(ops)  # upserts overwrite, deletes no-op
        assert replica.as_set() == source.as_set()

    def test_uncaptured_audit_fires_only_without_capture(self):
        table = self._fresh()
        hits: list[str] = []
        table.audit_uncaptured(hits.append)
        table.insert(("P3", 30))
        assert hits == ["parts"]
        # An armed capture silences the audit (the write is recorded).
        table.begin_capture()
        table.insert(("P4", 40))
        table.end_capture()
        assert hits == ["parts"]
        # Clearing the hook stops the audit.
        table.audit_uncaptured(None)
        table.insert(("P5", 50))
        assert hits == ["parts"]
