"""Rule-level tests for selection propagation (paper Table 6).

These drive single rules in isolation: craft an input diff, instantiate
the rule against a tiny plan, execute the resulting IR, and check the
emitted diff schemas and rows against the table's equations.
"""

import pytest

from repro.algebra import Select, scan
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import minimize_ir
from repro.core.rules.select import propagate_select
from repro.expr import col, lit
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("r", ("k", "a", "b"), ("k",))
    database.table("r").load([(1, 5, "x"), (2, 9, "y"), (3, 2, "z")])
    return database


@pytest.fixture
def plan(db):
    return annotate_plan(Select(scan(db, "r"), col("a").gt(lit(4))))


def run_rule(db, plan, in_schema, rows):
    """Instantiate the σ rules for one input diff and execute them."""
    ctx = IrContext(db, db)
    ctx.diffs["in"] = Diff(in_schema, rows)
    source = DiffSource("in", in_schema)
    outputs = propagate_select(plan, source, in_schema)
    results = []
    for schema, ir in outputs:
        rel = run_ir(minimize_ir(ir), ctx)
        results.append((schema, Diff.from_relation(schema, rel)))
    return results


def child_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.child.node_id}", ("k",), **kwargs)


class TestInsertRule:
    def test_filters_by_post_values(self, db, plan):
        schema = child_schema(plan, INSERT, post_attrs=("a", "b"))
        [(out_schema, diff)] = run_rule(
            db, plan, schema, [(10, 7, "n"), (11, 1, "m")]
        )
        assert out_schema.kind == INSERT
        assert diff.rows == [(10, 7, "n")]


class TestDeleteRule:
    def test_filters_by_pre_values_when_available(self, db, plan):
        schema = child_schema(plan, DELETE, pre_attrs=("a", "b"))
        [(out_schema, diff)] = run_rule(
            db, plan, schema, [(1, 5, "x"), (3, 2, "z")]
        )
        assert out_schema.kind == DELETE
        assert [r[0] for r in diff.rows] == [1]

    def test_passes_through_without_pre(self, db, plan):
        """Example 4.8: overestimated deletes are allowed."""
        schema = child_schema(plan, DELETE)
        [(_, diff)] = run_rule(db, plan, schema, [(1,), (3,)])
        assert len(diff) == 2


class TestUpdateRuleUntouchedCondition:
    def test_single_update_branch(self, db, plan):
        schema = child_schema(plan, UPDATE, pre_attrs=("a", "b"), post_attrs=("b",))
        outputs = run_rule(db, plan, schema, [(1, 5, "x", "q"), (3, 2, "z", "w")])
        assert len(outputs) == 1
        out_schema, diff = outputs[0]
        assert out_schema.kind == UPDATE
        # Row 3 fails φ(pre) -> filtered; row 1 passes.
        assert [r[0] for r in diff.rows] == [1]


class TestUpdateRuleConditionCrossing:
    def _schema(self, plan):
        return child_schema(plan, UPDATE, pre_attrs=("a", "b"), post_attrs=("a",))

    def test_three_branches_emitted(self, db, plan):
        outputs = run_rule(db, plan, self._schema(plan), [])
        kinds = sorted(s.kind for s, _ in outputs)
        assert kinds == sorted([UPDATE, INSERT, DELETE])

    def test_stays_satisfying(self, db, plan):
        # k=2: a 9 -> 8, satisfies before and after: pure update.
        outputs = run_rule(db, plan, self._schema(plan), [(2, 9, "y", 8)])
        by_kind = {s.kind: d for s, d in outputs}
        assert len(by_kind[UPDATE]) == 1
        assert len(by_kind[INSERT]) == 0
        assert len(by_kind[DELETE]) == 0

    def test_transition_in_becomes_insert(self, db, plan):
        # k=3: a 2 -> 9 enters the selection; but the live table still
        # has a=2 (the diff describes a hypothetical batch), so simulate
        # the post state first.
        db.table("r").update_uncounted((3,), {"a": 9})
        outputs = run_rule(db, plan, self._schema(plan), [(3, 2, "z", 9)])
        by_kind = {s.kind: d for s, d in outputs}
        assert len(by_kind[INSERT]) == 1
        insert_row = by_kind[INSERT].rows[0]
        assert insert_row[0] == 3
        assert len(by_kind[DELETE]) == 0
        # The update branch keeps it only if σφ(pre) passed — it did not.
        assert len(by_kind[UPDATE]) == 0

    def test_transition_out_becomes_delete(self, db, plan):
        db.table("r").update_uncounted((1,), {"a": 0})
        outputs = run_rule(db, plan, self._schema(plan), [(1, 5, "x", 0)])
        by_kind = {s.kind: d for s, d in outputs}
        assert len(by_kind[DELETE]) == 1
        assert by_kind[DELETE].rows[0][0] == 1
        assert len(by_kind[INSERT]) == 0
        assert len(by_kind[UPDATE]) == 0

    def test_never_satisfying_row_everywhere_dummy(self, db, plan):
        db.table("r").update_uncounted((3,), {"a": 3})
        outputs = run_rule(db, plan, self._schema(plan), [(3, 2, "z", 3)])
        for _schema, diff in outputs:
            assert len(diff) == 0

    def test_insert_branch_carries_full_tuples(self, db, plan):
        db.table("r").update_uncounted((3,), {"a": 9})
        outputs = run_rule(db, plan, self._schema(plan), [(3, 2, "z", 9)])
        by_kind = {s.kind: (s, d) for s, d in outputs}
        schema, diff = by_kind[INSERT]
        assert set(schema.post_attrs) == {"a", "b"}
        assert diff.rows[0] == (3, 9, "z")


class TestUpdateWithoutPre:
    def test_overestimates_but_covers(self, db, plan):
        """Without pre values the rule cannot filter φ(pre): the update
        branch keeps everything (overestimation) and the insert branch
        still probes the post state."""
        schema = child_schema(plan, UPDATE, post_attrs=("a",))
        db.table("r").update_uncounted((3,), {"a": 9})
        outputs = run_rule(db, plan, schema, [(3, 9)])
        by_kind = {s.kind: d for s, d in outputs}
        assert len(by_kind[UPDATE]) == 1  # dummy, absorbed by APPLY
        assert len(by_kind[INSERT]) == 1
