"""Failure-injection and environment-robustness tests."""

import pytest

from repro.algebra import evaluate_plan
from repro.core import IdIvmEngine
from repro.core.diffs import UPDATE, Diff, DiffSchema
from repro.core.ir import AppliedSource, DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.script import ApplyDiffStep, ComputeDiffStep, DeltaScript, execute_script
from repro.errors import ScriptError
from repro.storage import Database
from tests.conftest import build_view_v, build_view_v_prime


def make_db(auto_index: bool = True) -> Database:
    db = Database(auto_index=auto_index)
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    return db


class TestWithoutIndexes:
    """Without secondary indexes everything degrades to counted scans —
    costs change, results must not."""

    @pytest.mark.parametrize("build", [build_view_v, build_view_v_prime])
    def test_correct_without_auto_indexes(self, build):
        db = make_db(auto_index=False)
        engine = IdIvmEngine(db)
        view = engine.define_view("V", build(db))
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.log.insert("parts", ("P3", 9))
        engine.log.insert("devices_parts", ("D2", "P3"))
        engine.log.delete("devices_parts", ("D1", "P2"))
        engine.maintain()
        assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()

    def test_scan_fallback_costs_more(self):
        def cost(auto_index: bool) -> int:
            db = make_db(auto_index=auto_index)
            engine = IdIvmEngine(db)
            engine.define_view("V", build_view_v_prime(db))
            engine.log.update("parts", ("P1",), {"price": 11})
            return engine.maintain()["V"].total_cost

        assert cost(auto_index=False) > cost(auto_index=True)


class TestScriptMisuse:
    def test_apply_before_compute_raises(self, running_example_db):
        script = DeltaScript(
            [ApplyDiffStep("never_computed", 0, "view[V]", "view_update")],
            view_node_id=0,
        )
        ctx = IrContext(running_example_db, running_example_db)
        with pytest.raises(ScriptError):
            execute_script(script, ctx, running_example_db.counters)

    def test_apply_to_unregistered_target_raises(self, running_example_db):
        schema = DiffSchema(UPDATE, "V", ("pid",), ("price",), ("price",))
        compute = ComputeDiffStep(
            "d", schema, DiffSource("base", schema), "view_diff"
        )
        script = DeltaScript(
            [compute, ApplyDiffStep("d", 77, "view[V]", "view_update")],
            view_node_id=77,
        )
        ctx = IrContext(running_example_db, running_example_db)
        ctx.diffs["base"] = Diff(schema, [("P1", 10, 11)])
        with pytest.raises(ScriptError):
            execute_script(script, ctx, running_example_db.counters)

    def test_returning_before_apply_raises(self, running_example_db):
        ctx = IrContext(running_example_db, running_example_db)
        with pytest.raises(ScriptError):
            run_ir(AppliedSource("never_ran", ("pid",), ("price",)), ctx)


class TestConcurrentViews:
    def test_many_views_one_engine(self):
        """Ten views over the same tables, maintained in one round."""
        from repro.algebra import group_by, project_columns, scan, where
        from repro.expr import col, lit

        db = make_db()
        engine = IdIvmEngine(db)
        views = {}
        views["flat"] = engine.define_view("flat", build_view_v(db))
        views["agg"] = engine.define_view("agg", build_view_v_prime(db))
        for i, threshold in enumerate((5, 10, 15, 20)):
            views[f"sel{i}"] = engine.define_view(
                f"sel{i}",
                where(scan(db, "parts"), col("price").gt(lit(threshold))),
            )
        views["proj"] = engine.define_view(
            "proj", project_columns(scan(db, "devices"), ("did",))
        )
        views["counts"] = engine.define_view(
            "counts",
            group_by(scan(db, "devices_parts"), ("did",), [("count", None, "n")]),
        )
        engine.log.update("parts", ("P1",), {"price": 17})
        engine.log.insert("devices_parts", ("D3", "P2"))
        engine.log.update("devices", ("D3",), {"category": "phone"})
        engine.maintain()
        for name, view in views.items():
            expected = evaluate_plan(view.plan, db).as_set()
            assert view.table.as_set() == expected, name


class TestStringAndMixedTypes:
    def test_string_keys_and_values(self):
        db = Database()
        db.create_table("t", ("name", "team", "score"), ("name",))
        db.table("t").load([("ana", "red", 3), ("bo", "red", 5), ("cy", "blue", 2)])
        from repro.algebra import group_by, scan
        from repro.expr import col

        engine = IdIvmEngine(db)
        view = engine.define_view(
            "by_team",
            group_by(scan(db, "t"), ("team",), [("sum", col("score"), "total")]),
        )
        engine.log.update("t", ("ana",), {"team": "blue"})
        engine.maintain()
        assert view.table.as_set() == {("red", 5), ("blue", 5)}

    def test_float_measures(self):
        db = Database()
        db.create_table("m", ("k", "g", "v"), ("k",))
        db.table("m").load([(1, "a", 1.5), (2, "a", 2.25)])
        from repro.algebra import group_by, scan
        from repro.expr import col

        engine = IdIvmEngine(db)
        view = engine.define_view(
            "s", group_by(scan(db, "m"), ("g",), [("sum", col("v"), "t")])
        )
        engine.log.update("m", (1,), {"v": 2.5})
        engine.maintain()
        assert view.table.as_set() == {("a", 4.75)}
