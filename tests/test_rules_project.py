"""Rule-level tests for generalized projection propagation (Table 8)."""

import pytest

from repro.algebra import Project, scan
from repro.core.diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from repro.core.idinfer import annotate_plan
from repro.core.ir import DiffSource
from repro.core.ir_exec import IrContext, run_ir
from repro.core.minimize import estimate_probe_count, minimize_ir
from repro.core.rules.project import propagate_project
from repro.expr import Call, col, lit
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("r", ("k", "a", "b"), ("k",))
    database.table("r").load([(1, 5, 2), (2, 9, 4)])
    return database


@pytest.fixture
def plan(db):
    """π(key renamed, computed column, passthrough)."""
    return annotate_plan(
        Project(
            scan(db, "r"),
            [
                ("key", col("k")),
                ("total", col("a") + col("b")),
                ("a", col("a")),
            ],
        )
    )


def run_rule(db, plan, in_schema, rows, db_pre=None):
    ctx = IrContext(db_pre if db_pre is not None else db, db)
    ctx.diffs["in"] = Diff(in_schema, rows)
    outputs = propagate_project(plan, DiffSource("in", in_schema), in_schema)
    return [
        (schema, Diff.from_relation(schema, run_ir(minimize_ir(ir), ctx)))
        for schema, ir in outputs
    ]


def in_schema(plan, kind, **kwargs):
    return DiffSchema(kind, f"n{plan.child.node_id}", ("k",), **kwargs)


class TestInsertRule:
    def test_outputs_computed(self, db, plan):
        schema = in_schema(plan, INSERT, post_attrs=("a", "b"))
        [(out_schema, diff)] = run_rule(db, plan, schema, [(9, 1, 2)])
        assert out_schema.kind == INSERT
        assert out_schema.id_attrs == ("key",)
        assert diff.rows == [(9, 3, 1)]


class TestDeleteRule:
    def test_ids_renamed_and_pres_computed(self, db, plan):
        schema = in_schema(plan, DELETE, pre_attrs=("a", "b"))
        [(out_schema, diff)] = run_rule(db, plan, schema, [(1, 5, 2)])
        assert out_schema.kind == DELETE
        assert out_schema.id_attrs == ("key",)
        assert set(out_schema.pre_attrs) == {"total", "a"}
        assert diff.rows[0][0] == 1

    def test_delete_without_pres_keeps_ids_only(self, db, plan):
        schema = in_schema(plan, DELETE)
        [(out_schema, diff)] = run_rule(db, plan, schema, [(1,)])
        assert out_schema.pre_attrs == ()
        assert diff.rows == [(1,)]


class TestUpdateRule:
    def test_affected_outputs_recomputed(self, db, plan):
        schema = in_schema(plan, UPDATE, pre_attrs=("a", "b"), post_attrs=("a",))
        [(out_schema, diff)] = run_rule(db, plan, schema, [(1, 5, 2, 6)])
        assert out_schema.kind == UPDATE
        assert set(out_schema.post_attrs) == {"total", "a"}
        row = diff.rows[0]
        assert diff.post_value(row, "total") == 8  # 6 + 2
        assert diff.post_value(row, "a") == 6

    def test_rule_minimizes_to_zero_probes(self, db, plan):
        schema = in_schema(plan, UPDATE, pre_attrs=("a", "b"), post_attrs=("a",))
        ctx = IrContext(db, db)
        outputs = propagate_project(plan, DiffSource("in", schema), schema)
        [(_, ir)] = outputs
        assert estimate_probe_count(minimize_ir(ir)) == 0

    def test_untouched_outputs_not_triggered(self, db):
        """An update on a dropped attribute yields no output diff."""
        plan = annotate_plan(
            Project(scan(db, "r"), [("key", col("k")), ("a", col("a"))])
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("a", "b"), post_attrs=("b",),
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, 5, 2, 3)])
        assert propagate_project(plan, DiffSource("in", schema), schema) == []

    def test_isupd_filters_noop_rows(self, db, plan):
        """σ_isupd: a row whose recomputed outputs are unchanged drops."""
        schema = in_schema(plan, UPDATE, pre_attrs=("a", "b"), post_attrs=("a",))
        # a: 5 -> 5 (no-op): total and a both unchanged.
        [(_, diff)] = run_rule(db, plan, schema, [(1, 5, 2, 5)])
        assert len(diff) == 0

    def test_scalar_function_items(self, db):
        plan = annotate_plan(
            Project(
                scan(db, "r"),
                [("key", col("k")), ("mag", Call("abs", [col("a") - lit(7)]))],
            )
        )
        schema = DiffSchema(
            UPDATE, f"n{plan.child.node_id}", ("k",),
            pre_attrs=("a", "b"), post_attrs=("a",),
        )
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, 5, 2, 10)])
        outputs = propagate_project(plan, DiffSource("in", schema), schema)
        [(out_schema, ir)] = outputs
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        assert diff.post_value(diff.rows[0], "mag") == 3


class TestFdExpansion:
    """Updates whose recomputed outputs depend on attributes outside the
    diff: the output diff must re-key by the full child IDs."""

    @pytest.fixture
    def join_plan(self, db):
        from repro.algebra import equi_join, rename

        db.create_table("s", ("sid", "k_ref", "qty"), ("sid",))
        db.table("s").load([(10, 1, 3), (11, 1, 4), (12, 2, 5)])
        joined = equi_join(
            scan(db, "s"), rename(scan(db, "r"), {"k": "rk"}), [("k_ref", "rk")]
        )
        return annotate_plan(
            Project(
                joined,
                [
                    ("sid", col("sid")),
                    ("rk", col("rk")),
                    ("weight", col("a") * col("qty")),
                ],
            )
        )

    def test_expanded_diff_keyed_by_full_ids(self, db, join_plan):
        # Update r.a: weight = a * qty needs qty (outside the diff).
        child = join_plan.child
        schema = DiffSchema(
            UPDATE, f"n{child.node_id}", ("rk",),
            pre_attrs=("a", "b"), post_attrs=("a",),
        )
        db.table("r").update_uncounted((1,), {"a": 6})
        ctx = IrContext(db, db)
        ctx.diffs["in"] = Diff(schema, [(1, 5, 2, 6)])
        outputs = propagate_project(join_plan, DiffSource("in", schema), schema)
        [(out_schema, ir)] = outputs
        # Full child IDs: sid plus the canonical join key k_ref (which
        # Pass 1 added to the projection).
        assert set(out_schema.id_attrs) == {"sid", "k_ref"}
        assert out_schema.pre_attrs == ()  # cross-branch pres are unsound
        diff = Diff.from_relation(out_schema, run_ir(minimize_ir(ir), ctx))
        weights = {
            diff.id_of(r): diff.post_value(r, "weight") for r in diff.rows
        }
        assert weights == {(10, 1): 18, (11, 1): 24}
