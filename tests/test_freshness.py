"""FreshnessTracker: staleness, observed lag, engine integration."""

from __future__ import annotations

from repro.core import IdIvmEngine
from repro.obs.freshness import FreshnessTracker
from repro.sql import sql_to_plan
from repro.storage import Database


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestFreshnessTracker:
    def test_new_view_starts_fresh(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_logged(1)
        tracker.note_logged(2)
        tracker.note_view("V")  # defined *after* two entries: starts fresh
        stale = tracker.staleness("V")
        assert stale.pending == 0
        assert stale.fresh

    def test_pending_and_seconds_behind(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_view("V")
        clock.advance(10)
        tracker.note_logged(1)
        clock.advance(5)
        tracker.note_logged(2)
        clock.advance(5)
        stale = tracker.staleness("V")
        assert stale.pending == 2
        # oldest pending entry was logged 10 seconds ago
        assert stale.seconds_behind == 10.0
        assert not stale.fresh

    def test_maintained_clears_pending_and_observes_lag(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_view("V")
        tracker.note_logged(1, logged_at=clock())
        clock.advance(3)
        tracker.note_maintained("V", 1, entry_times=[clock.now - 3])
        stale = tracker.staleness("V")
        assert stale.pending == 0
        assert stale.seconds_behind == 0.0
        lag = tracker.lag_histogram("V")
        assert lag.count == 1
        assert lag.total == 3.0
        assert tracker.observed_lag.count == 1

    def test_per_view_positions_are_independent(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_view("A")
        tracker.note_view("B")
        tracker.note_logged(1)
        tracker.note_logged(2)
        tracker.note_maintained("A", 2)
        assert tracker.staleness("A").pending == 0
        assert tracker.staleness("B").pending == 2

    def test_prune_keeps_entries_some_view_needs(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_view("A")
        tracker.note_view("B")
        for seq in range(1, 6):
            tracker.note_logged(seq)
        tracker.note_maintained("A", 5)
        # B still needs 1..5: pending deque must keep them
        assert tracker.staleness("B").pending == 5
        assert len(tracker._pending) == 5
        tracker.note_maintained("B", 5)
        assert len(tracker._pending) == 0

    def test_report_shape(self):
        clock = FakeClock()
        tracker = FreshnessTracker(clock=clock)
        tracker.note_view("V")
        tracker.note_logged(1)
        tracker.note_maintained("V", 1, entry_times=[clock.now])
        report = tracker.report()
        assert report["log_position"] == 1
        assert report["views"]["V"]["pending"] == 0
        assert report["views"]["V"]["rounds"] == 1
        assert report["views"]["V"]["observed_lag"]["count"] == 1
        assert report["observed_lag"]["type"] == "loghist"


def _demo_db() -> Database:
    db = Database()
    db.create_table(
        "parts", ("pid", "price"), ("pid",), nullable=(),
        types={"pid": "str", "price": "int"},
    )
    db.table("parts").load([("P1", 10), ("P2", 20)])
    return db


class TestEngineIntegration:
    def test_engine_tracks_freshness_across_rounds(self):
        db = _demo_db()
        engine = IdIvmEngine(db)
        engine.define_view(
            "V", sql_to_plan(db, "SELECT pid, price FROM parts")
        )
        assert engine.freshness.staleness("V").fresh

        engine.log.update("parts", ("P1",), {"price": 11})
        assert engine.freshness.staleness("V").pending == 1
        engine.maintain()
        stale = engine.freshness.staleness("V")
        assert stale.pending == 0
        assert stale.rounds == 1
        assert engine.freshness.lag_histogram("V").count == 1

        engine.log.update("parts", ("P2",), {"price": 21})
        engine.log.update("parts", ("P1",), {"price": 12})
        engine.maintain()
        assert engine.freshness.staleness("V").rounds == 2
        assert engine.freshness.lag_histogram("V").count == 3
        assert engine.freshness.log_position == 3

    def test_modlog_entries_carry_seq_and_logged_at(self):
        db = _demo_db()
        engine = IdIvmEngine(db)
        engine.define_view(
            "V", sql_to_plan(db, "SELECT pid, price FROM parts")
        )
        engine.log.update("parts", ("P1",), {"price": 11})
        engine.log.update("parts", ("P2",), {"price": 21})
        entries = list(engine.log.entries)
        assert [e.seq for e in entries] == [1, 2]
        assert all(e.logged_at > 0 for e in entries)
