"""Integration points of the static analyzer: the strict generator gate,
the ``repro lint`` CLI, the crosscheck runner wiring, the diagnostic
model, and the schema metadata it all rests on."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.algebra import scan, where
from repro.analysis import AnalysisContext, RULES, analyze_plan, run_passes
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.registry import pass_names, register_pass
from repro.cli import main
from repro.core.engine import IdIvmEngine
from repro.errors import SchemaError, StaticAnalysisError
from repro.expr import Cmp, Col, Lit
from repro.storage import Database
from repro.storage.schema import TableSchema


def make_db() -> Database:
    db = Database()
    db.create_table(
        "t", ("k", "a"), ("k",), nullable=("a",), types={"k": "int", "a": "int"}
    )
    db.table("t").load([(1, 5), (2, None)])
    return db


# ----------------------------------------------------------------------
# the strict generator / engine gate
# ----------------------------------------------------------------------
class TestStrictGate:
    def test_strict_engine_rejects_non_boolean_filter(self):
        """σ(a) is a TC102 error: the truthiness filter silently drops
        rows under 3VL.  A strict engine must refuse the definition."""
        db = make_db()
        engine = IdIvmEngine(db, strict=True)
        with pytest.raises(StaticAnalysisError) as exc:
            engine.define_view("V", where(scan(db, "t"), Col("a")))
        assert "TC102" in str(exc.value)
        assert "V" in str(exc.value)

    def test_default_engine_accepts_the_same_view(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", where(scan(db, "t"), Col("a")))
        assert view is engine.views["V"]

    def test_strict_engine_accepts_clean_view(self):
        db = make_db()
        engine = IdIvmEngine(db, strict=True)
        view = engine.define_view(
            "V", where(scan(db, "t"), Cmp(">", Col("a"), Lit(0)))
        )
        assert view is engine.views["V"]


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestLintCommand:
    def test_lint_shipped_workloads_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "devices/flat" in out
        assert "bsma/Q7" in out
        assert "0 error(s)" in out.splitlines()[-1]

    def test_lint_json_output(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        views = {entry["view"] for entry in payload["views"]}
        # every view is analyzed twice: the generated script and the
        # compiled-backend script the engine may execute instead.
        assert "devices/aggregate" in views and len(views) == 20
        assert "devices/aggregate [compiled]" in views
        for entry in payload["views"]:
            for diag in entry["diagnostics"]:
                assert diag["severity"] in ("warning", "info")

    def test_lint_verbose_shows_info_diagnostics(self, capsys):
        main(["lint", "--verbose"])
        out = capsys.readouterr().out
        assert "SH402" in out


# ----------------------------------------------------------------------
# lint output determinism under PYTHONHASHSEED
# ----------------------------------------------------------------------
# ``repro lint --json`` is diffed in CI (uploaded as an artifact) and
# consumed by tooling, so its bytes must not depend on the hash seed.
# The analyzer walks sets (anchor candidates, footprint tables, schema
# column sets); an unsorted iteration anywhere would reorder
# diagnostics between runs.  Same idiom as tests/test_wire.py.
_LINT_CHILD = r"""
import io, hashlib, sys
from contextlib import redirect_stdout
from repro.cli import main
buf = io.StringIO()
with redirect_stdout(buf):
    status = main(["lint", "--json"])
assert status == 0, buf.getvalue()
sys.stdout.write(hashlib.sha256(buf.getvalue().encode()).hexdigest())
"""

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _lint_digest(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _LINT_CHILD],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestLintDeterminism:
    def test_lint_json_bytes_stable_across_hash_seeds(self):
        digests = {_lint_digest(seed) for seed in ("0", "4242")}
        assert len(digests) == 1, "lint --json bytes depend on PYTHONHASHSEED"

    def test_report_orders_diagnostics_deterministically(self):
        report = AnalysisReport()
        report.add("SH402", "z-loc", "zzz")
        report.add("RACE601", "step 2 [round mixed]", "b")
        report.add("RACE601", "step 1 [round mixed]", "a")
        report.add("TC102", "n0", "boom")
        rules = [d.rule_id for d in report.sorted_diagnostics()]
        assert rules == ["RACE601", "RACE601", "SH402", "TC102"]
        locs = [d.location for d in report.sorted_diagnostics()[:2]]
        assert locs == ["step 1 [round mixed]", "step 2 [round mixed]"]


# ----------------------------------------------------------------------
# the crosscheck runner
# ----------------------------------------------------------------------
class TestCrosscheckWiring:
    def test_run_case_collects_diagnostics(self):
        from repro.crosscheck import generate_case, run_case

        result = run_case(generate_case(0, 0))
        assert result.divergences == []
        assert isinstance(result.diagnostics, list)

    def test_analysis_error_is_a_divergence(self):
        """A case whose generated plan carries an error diagnostic must
        surface as an ``analysis`` divergence, not pass silently."""
        from repro.crosscheck import run_case

        case = {
            "version": 1,
            "tables": [
                {
                    "name": "t0",
                    "columns": ["k", "c0"],
                    "key": ["k"],
                    "rows": [[0, 1], [1, 0]],
                    "nullable": [],
                    "types": {"k": "int", "c0": "int"},
                }
            ],
            "plan": {
                "op": "select",
                "child": {"op": "scan", "table": "t0"},
                "predicate": ["col", "c0"],
            },
            "batches": [[{"op": "insert", "table": "t0", "row": [2, 1]}]],
        }
        result = run_case(case)
        analysis = [d for d in result.divergences if d.kind == "analysis"]
        assert analysis and analysis[0].strategy == "analyzer"
        assert "TC102" in analysis[0].detail


# ----------------------------------------------------------------------
# the diagnostic model and registry
# ----------------------------------------------------------------------
class TestDiagnosticModel:
    def test_severity_is_fixed_per_rule(self):
        report = AnalysisReport()
        report.add("TC102", "n0", "boom")
        [diag] = report.diagnostics
        assert diag.severity == RULES["TC102"].severity == "error"

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            AnalysisReport().add("TC999", "n0", "boom")

    def test_render_and_json_carry_hint(self):
        diag = Diagnostic("SC307", "warning", "step 3", "msg", hint="wrap it")
        assert "hint: wrap it" in diag.render()
        assert diag.to_json()["hint"] == "wrap it"
        assert "hint" not in Diagnostic("SC307", "warning", "s", "m").to_json()

    def test_has_errors_tracks_severity(self):
        report = AnalysisReport()
        report.add("SH402", "t", "routable")
        assert not report.has_errors()
        report.add("KEY201", "n1", "not a key")
        assert report.has_errors()
        assert len(report.errors) == 1 and len(report.warnings) == 0

    def test_pass_registry_is_ordered_and_guarded(self):
        assert pass_names() == (
            "typecheck",
            "keys",
            "script",
            "shard",
            "cost",
            "interference",
        )
        with pytest.raises(ValueError):
            register_pass("typecheck")(lambda ctx: None)
        db = make_db()
        ctx = AnalysisContext(plan=scan(db, "t"))
        with pytest.raises(ValueError):
            run_passes(ctx, ["nonexistent"])

    def test_analyze_plan_annotates_unannotated_input(self):
        db = make_db()
        report = analyze_plan(where(scan(db, "t"), Cmp(">", Col("a"), Lit(0))))
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# schema metadata the analyzer rests on
# ----------------------------------------------------------------------
class TestSchemaMetadata:
    def test_default_nullability_is_all_non_key(self):
        schema = TableSchema("t", ("k", "a", "b"), ("k",))
        assert schema.nullable == frozenset({"a", "b"})
        assert schema.is_nullable("a") and not schema.is_nullable("k")

    def test_unknown_nullable_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), nullable=("zz",))

    def test_key_column_cannot_be_nullable(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), nullable=("k",))

    def test_unknown_type_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), types={"a": "decimal"})

    def test_type_for_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), types={"zz": "int"})

    def test_rename_preserves_metadata(self):
        schema = TableSchema(
            "t", ("k", "a"), ("k",), nullable=("a",), types={"a": "int"}
        )
        renamed = schema.rename("t2")
        assert renamed.nullable == frozenset({"a"})
        assert renamed.column_type("a") == "int"
