"""Integration points of the static analyzer: the strict generator gate,
the ``repro lint`` CLI, the crosscheck runner wiring, the diagnostic
model, and the schema metadata it all rests on."""

from __future__ import annotations

import json

import pytest

from repro.algebra import scan, where
from repro.analysis import AnalysisContext, RULES, analyze_plan, run_passes
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.registry import pass_names, register_pass
from repro.cli import main
from repro.core.engine import IdIvmEngine
from repro.errors import SchemaError, StaticAnalysisError
from repro.expr import Cmp, Col, Lit
from repro.storage import Database
from repro.storage.schema import TableSchema


def make_db() -> Database:
    db = Database()
    db.create_table(
        "t", ("k", "a"), ("k",), nullable=("a",), types={"k": "int", "a": "int"}
    )
    db.table("t").load([(1, 5), (2, None)])
    return db


# ----------------------------------------------------------------------
# the strict generator / engine gate
# ----------------------------------------------------------------------
class TestStrictGate:
    def test_strict_engine_rejects_non_boolean_filter(self):
        """σ(a) is a TC102 error: the truthiness filter silently drops
        rows under 3VL.  A strict engine must refuse the definition."""
        db = make_db()
        engine = IdIvmEngine(db, strict=True)
        with pytest.raises(StaticAnalysisError) as exc:
            engine.define_view("V", where(scan(db, "t"), Col("a")))
        assert "TC102" in str(exc.value)
        assert "V" in str(exc.value)

    def test_default_engine_accepts_the_same_view(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", where(scan(db, "t"), Col("a")))
        assert view is engine.views["V"]

    def test_strict_engine_accepts_clean_view(self):
        db = make_db()
        engine = IdIvmEngine(db, strict=True)
        view = engine.define_view(
            "V", where(scan(db, "t"), Cmp(">", Col("a"), Lit(0)))
        )
        assert view is engine.views["V"]


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestLintCommand:
    def test_lint_shipped_workloads_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "devices/flat" in out
        assert "bsma/Q7" in out
        assert "0 error(s)" in out.splitlines()[-1]

    def test_lint_json_output(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        views = {entry["view"] for entry in payload["views"]}
        assert "devices/aggregate" in views and len(views) == 10
        for entry in payload["views"]:
            for diag in entry["diagnostics"]:
                assert diag["severity"] in ("warning", "info")

    def test_lint_verbose_shows_info_diagnostics(self, capsys):
        main(["lint", "--verbose"])
        out = capsys.readouterr().out
        assert "SH402" in out


# ----------------------------------------------------------------------
# the crosscheck runner
# ----------------------------------------------------------------------
class TestCrosscheckWiring:
    def test_run_case_collects_diagnostics(self):
        from repro.crosscheck import generate_case, run_case

        result = run_case(generate_case(0, 0))
        assert result.divergences == []
        assert isinstance(result.diagnostics, list)

    def test_analysis_error_is_a_divergence(self):
        """A case whose generated plan carries an error diagnostic must
        surface as an ``analysis`` divergence, not pass silently."""
        from repro.crosscheck import run_case

        case = {
            "version": 1,
            "tables": [
                {
                    "name": "t0",
                    "columns": ["k", "c0"],
                    "key": ["k"],
                    "rows": [[0, 1], [1, 0]],
                    "nullable": [],
                    "types": {"k": "int", "c0": "int"},
                }
            ],
            "plan": {
                "op": "select",
                "child": {"op": "scan", "table": "t0"},
                "predicate": ["col", "c0"],
            },
            "batches": [[{"op": "insert", "table": "t0", "row": [2, 1]}]],
        }
        result = run_case(case)
        analysis = [d for d in result.divergences if d.kind == "analysis"]
        assert analysis and analysis[0].strategy == "analyzer"
        assert "TC102" in analysis[0].detail


# ----------------------------------------------------------------------
# the diagnostic model and registry
# ----------------------------------------------------------------------
class TestDiagnosticModel:
    def test_severity_is_fixed_per_rule(self):
        report = AnalysisReport()
        report.add("TC102", "n0", "boom")
        [diag] = report.diagnostics
        assert diag.severity == RULES["TC102"].severity == "error"

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            AnalysisReport().add("TC999", "n0", "boom")

    def test_render_and_json_carry_hint(self):
        diag = Diagnostic("SC307", "warning", "step 3", "msg", hint="wrap it")
        assert "hint: wrap it" in diag.render()
        assert diag.to_json()["hint"] == "wrap it"
        assert "hint" not in Diagnostic("SC307", "warning", "s", "m").to_json()

    def test_has_errors_tracks_severity(self):
        report = AnalysisReport()
        report.add("SH402", "t", "routable")
        assert not report.has_errors()
        report.add("KEY201", "n1", "not a key")
        assert report.has_errors()
        assert len(report.errors) == 1 and len(report.warnings) == 0

    def test_pass_registry_is_ordered_and_guarded(self):
        assert pass_names() == ("typecheck", "keys", "script", "shard", "cost")
        with pytest.raises(ValueError):
            register_pass("typecheck")(lambda ctx: None)
        db = make_db()
        ctx = AnalysisContext(plan=scan(db, "t"))
        with pytest.raises(ValueError):
            run_passes(ctx, ["nonexistent"])

    def test_analyze_plan_annotates_unannotated_input(self):
        db = make_db()
        report = analyze_plan(where(scan(db, "t"), Cmp(">", Col("a"), Lit(0))))
        assert report.diagnostics == []


# ----------------------------------------------------------------------
# schema metadata the analyzer rests on
# ----------------------------------------------------------------------
class TestSchemaMetadata:
    def test_default_nullability_is_all_non_key(self):
        schema = TableSchema("t", ("k", "a", "b"), ("k",))
        assert schema.nullable == frozenset({"a", "b"})
        assert schema.is_nullable("a") and not schema.is_nullable("k")

    def test_unknown_nullable_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), nullable=("zz",))

    def test_key_column_cannot_be_nullable(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), nullable=("k",))

    def test_unknown_type_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), types={"a": "decimal"})

    def test_type_for_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ("k", "a"), ("k",), types={"zz": "int"})

    def test_rename_preserves_metadata(self):
        schema = TableSchema(
            "t", ("k", "a"), ("k",), nullable=("a",), types={"a": "int"}
        )
        renamed = schema.rename("t2")
        assert renamed.nullable == frozenset({"a"})
        assert renamed.column_type("a") == "int"
