"""Pass 2 (keys) unit tests: the FD audit vs. tampered ID claims."""

from __future__ import annotations

from repro.algebra import equi_join, group_by, scan, where
from repro.algebra.plan import Join, Project, Scan, UnionAll
from repro.analysis import analyze_plan
from repro.analysis.keys import audit_plan_keys, closure
from repro.analysis.diagnostics import AnalysisReport
from repro.core.idinfer import annotate_plan
from repro.expr import Arith, Cmp, Col, Lit
from repro.storage import Database
from repro.workloads.devices import (
    DevicesConfig,
    build_aggregate_view,
    build_database,
    build_flat_view,
)


def make_db() -> Database:
    db = Database()
    db.create_table("t", ("k", "x", "y"), ("k",))
    db.create_table("u", ("j", "k"), ("j",))
    return db


def keys_report(plan) -> AnalysisReport:
    report = AnalysisReport()
    audit_plan_keys(plan, report)
    return report


def test_closure_fixpoint():
    fds = [(frozenset("a"), frozenset("b")), (frozenset("b"), frozenset("c"))]
    assert closure({"a"}, fds) == frozenset("abc")
    assert closure({"b"}, fds) == frozenset("bc")


def test_inferred_plans_audit_clean():
    cfg = DevicesConfig(n_parts=10, n_devices=10, diff_size=2, fanout=2)
    db = build_database(cfg)
    for build in (build_flat_view, build_aggregate_view):
        report = analyze_plan(build(db, cfg))
        assert not [d for d in report.diagnostics if d.rule_id.startswith("KEY")]


def test_key201_on_tampered_join_ids():
    """Drop one side's key from a join's claimed ids: the remaining ids
    no longer determine that side's columns."""
    db = make_db()
    plan = annotate_plan(
        equi_join(scan(db, "t", alias="a"), scan(db, "u", alias="b"), [("a_k", "b_k")])
    )
    join = next(n for n in plan.walk() if isinstance(n, Join))
    assert "b_j" in join.ids
    join.ids = tuple(i for i in join.ids if i != "b_j")
    report = keys_report(plan)
    [diag] = [d for d in report.diagnostics if d.rule_id == "KEY201"]
    assert diag.severity == "error"
    assert "b_j" in diag.message


def test_key202_on_ids_outside_output():
    db = make_db()
    plan = annotate_plan(scan(db, "t"))
    plan.ids = ("k", "phantom")
    report = keys_report(plan)
    [diag] = [d for d in report.diagnostics if d.rule_id == "KEY202"]
    assert diag.severity == "error" and "phantom" in diag.message


def test_key201_on_union_missing_branch_column():
    db = make_db()
    plan = annotate_plan(UnionAll(scan(db, "t"), scan(db, "t")))
    union = next(n for n in plan.walk() if isinstance(n, UnionAll))
    union.ids = tuple(i for i in union.ids if i != union.branch_column)
    report = keys_report(plan)
    assert any(
        d.rule_id == "KEY201" and "branch column" in d.message
        for d in report.diagnostics
    )


def test_union_with_branch_column_is_clean():
    db = make_db()
    plan = annotate_plan(UnionAll(scan(db, "t"), scan(db, "t")))
    assert keys_report(plan).diagnostics == []


def test_project_computed_item_covered_through_extended_space():
    """π(k, x+y AS s): the FD {x,y}→s lives outside the output columns;
    the audit must still prove ids (k,) cover s via the child space."""
    db = make_db()
    plan = annotate_plan(
        Project(scan(db, "t"), [("k", Col("k")), ("s", Arith("+", Col("x"), Col("y")))])
    )
    assert keys_report(plan).diagnostics == []


def test_flagged_node_does_not_cascade():
    """One wrong claim is reported once; ancestors audit against the
    assumed (claimed) FD instead of re-flagging."""
    db = make_db()
    plan = annotate_plan(
        where(
            equi_join(scan(db, "t", alias="a"), scan(db, "u", alias="b"), [("a_k", "b_k")]),
            Cmp(">", Col("a_x"), Lit(0)),
        )
    )
    join = next(n for n in plan.walk() if isinstance(n, Join))
    join.ids = tuple(i for i in join.ids if i != "b_j")
    report = keys_report(plan)
    assert len([d for d in report.diagnostics if d.rule_id == "KEY201"]) == 1


def test_groupby_keys_trivially_keyed():
    db = make_db()
    plan = annotate_plan(
        group_by(scan(db, "t"), ["x"], [("count", None, "n")])
    )
    assert keys_report(plan).diagnostics == []
