"""The semijoin operator — the worked extensibility example.

Exercises the full pipeline for an operator added after the fact:
ID inference, rule instantiation, script generation, maintenance, and
agreement with the tuple-based baseline and recomputation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import SemiJoin, evaluate_plan, group_by, rename, scan
from repro.baselines import TupleIvmEngine
from repro.core import IdIvmEngine, annotate_plan
from repro.expr import col
from repro.storage import Database


def make_db(products=None, orders=None) -> Database:
    db = Database()
    db.create_table("products", ("sku", "price"), ("sku",))
    db.create_table("orders", ("oid", "o_sku"), ("oid",))
    db.table("products").load(
        products if products is not None else [("A", 10), ("B", 20), ("C", 30)]
    )
    db.table("orders").load(
        orders if orders is not None else [(1, "A"), (2, "A"), (3, "B")]
    )
    return db


def ordered_products(db):
    """Products with at least one order."""
    return SemiJoin(
        scan(db, "products"),
        rename(scan(db, "orders"), {"oid": "o_oid"}),
        col("sku").eq(col("o_sku")),
    )


class TestSemijoinBasics:
    def test_evaluation(self):
        db = make_db()
        result = evaluate_plan(ordered_products(db), db)
        assert result.as_set() == {("A", 10), ("B", 20)}

    def test_id_inference(self):
        db = make_db()
        annotated = annotate_plan(ordered_products(db))
        assert annotated.ids == ("sku",)

    def test_explain_renders(self):
        from repro.algebra import explain_plan

        db = make_db()
        text = explain_plan(annotate_plan(ordered_products(db)))
        assert "⋉" in text


class TestSemijoinMaintenance:
    def test_left_updates_pass_through(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", ordered_products(db))
        engine.log.update("products", ("A",), {"price": 11})
        report = engine.maintain()["V"]
        assert view.table.as_set() == {("A", 11), ("B", 20)}
        # Non-conditional update: no base access for the diff.
        assert report.cost_of("view_diff") == 0

    def test_right_insert_adds_left_row(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", ordered_products(db))
        engine.log.insert("orders", (9, "C"))
        engine.maintain()
        assert ("C", 30) in view.table.as_set()

    def test_right_delete_removes_left_row(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", ordered_products(db))
        engine.log.delete("orders", (3,))  # B's only order
        engine.maintain()
        assert view.table.as_set() == {("A", 10)}

    def test_right_delete_with_surviving_match(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", ordered_products(db))
        engine.log.delete("orders", (1,))  # A still ordered via order 2
        engine.maintain()
        assert view.table.as_set() == {("A", 10), ("B", 20)}

    def test_right_update_moves_membership(self):
        db = make_db()
        engine = IdIvmEngine(db)
        view = engine.define_view("V", ordered_products(db))
        engine.log.update("orders", (3,), {"o_sku": "C"})
        engine.maintain()
        assert view.table.as_set() == {("A", 10), ("C", 30)}

    def test_aggregate_over_semijoin(self):
        db = make_db()
        engine = IdIvmEngine(db)
        plan = group_by(
            ordered_products(db), ("sku",), [("sum", col("price"), "p")]
        )
        view = engine.define_view("V", plan)
        engine.log.update("orders", (3,), {"o_sku": "C"})
        engine.log.update("products", ("C",), {"price": 31})
        engine.maintain()
        assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    products=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 9)), max_size=8
    ).map(lambda rows: [(f"S{k}", v) for k, v in {r[0]: r for r in rows}.values()]),
    orders=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 15)), max_size=10
    ).map(lambda rows: list({r[0]: (r[0], f"S{r[1]}") for r in rows}.values())),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["ins_o", "del_o", "upd_o", "upd_p", "del_p", "ins_p"]),
            st.integers(0, 1000),
            st.integers(0, 15),
        ),
        max_size=8,
    ),
)
def test_semijoin_property(products, orders, ops):
    """Random modifications: ID engine == tuple engine == recompute."""
    db_id = make_db(products, orders)
    db_tuple = make_db(products, orders)
    engines = [IdIvmEngine(db_id), TupleIvmEngine(db_tuple)]
    views = [e.define_view("V", ordered_products(e.db)) for e in engines]
    for i, (kind, seed, v) in enumerate(ops):
        for engine in engines:
            db = engine.db
            if kind == "ins_o":
                engine.log.insert("orders", (5000 + i, f"S{v}"))
            elif kind == "ins_p":
                key = f"SN{i}"
                if db.table("products").get_uncounted((key,)) is None:
                    engine.log.insert("products", (key, v))
            elif kind in ("del_o", "upd_o"):
                keys = sorted(k for (k,) in db.table("orders")._rows)
                if not keys:
                    continue
                key = keys[seed % len(keys)]
                if kind == "del_o":
                    engine.log.delete("orders", (key,))
                else:
                    engine.log.update("orders", (key,), {"o_sku": f"S{v}"})
            else:
                keys = sorted(k for (k,) in db.table("products")._rows)
                if not keys:
                    continue
                key = keys[seed % len(keys)]
                if kind == "del_p":
                    engine.log.delete("products", (key,))
                else:
                    engine.log.update("products", (key,), {"price": v})
    for engine, view in zip(engines, views):
        engine.maintain()
        expected = evaluate_plan(view.plan, engine.db).as_set()
        assert view.table.as_set() == expected, type(engine).__name__
