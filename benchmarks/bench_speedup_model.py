"""Section 6 equations 1–2: predicted vs measured speedups.

Sweeps the fanout (which drives both a and p) on the SPJ view and the
aggregate view.  The workload parameters (a, p, g) feeding the
analytical speedup formulas come from TWO independent paths:

* **symbolic** — :func:`repro.analysis.cost.estimate_chain_parameters`
  derives them from the plan shape + database statistics alone, before
  any maintenance runs (what a planner would have);
* **measured** — backed out of the instrumented engines' per-phase
  access counters after the fact.

Both predictions are checked against the observed access-count ratio,
and the two parameter paths are checked against each other.  The
symbolic path is a per-diff-row model: its *a* ignores that the
executor dedupes repeated probes, and its *g* cannot see cross-row
group overlap within one batch — both make it an upper-bound-flavoured
estimate, hence the looser (documented) tolerances on that leg.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import SYSTEMS, write_bench_json

from repro.analysis.cost import estimate_chain_parameters
from repro.bench import format_table, run_system
from repro.costmodel import agg_update_speedup, spj_update_speedup
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
    build_flat_view,
)

FANOUTS = (5, 10, 20)
D = 100

#: Measured-parameter predictions must track the observed ratio tightly.
MEASURED_TOL = 0.05
#: Symbolic-parameter predictions carry the estimate error of a and g
#: (probe dedupe, batch group overlap) on top of the formula error.
SYMBOLIC_TOL = 0.35
#: Path agreement: symbolic vs measured a (probe dedupe gap) and p.
A_AGREE_TOL = 0.35
P_AGREE_TOL = 0.10


def _run(config, build_view):
    out = {}
    for label in ("idIVM", "tuple"):
        out[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(config),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_view(db, config),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, config
            ),
        )
    return out


def _profile(config, build_view):
    """The symbolic-path parameters for updates on ``parts``."""
    db = build_devices_database(config)
    return estimate_chain_parameters(build_view(db, config), db, "parts")


@lru_cache(maxsize=1)
def spj_points():
    rows = []
    for f in FANOUTS:
        config = DevicesConfig(
            n_parts=600, n_devices=600, diff_size=D, fanout=f
        )
        profile = _profile(config, build_flat_view)
        results = _run(config, build_flat_view)
        p = results["idIVM"].writes / D
        a = results["tuple"].phase("view_diff") / D
        predicted = spj_update_speedup(a, p)
        predicted_sym = spj_update_speedup(profile.a, profile.p)
        observed = results["tuple"].total_cost / results["idIVM"].total_cost
        rows.append(
            (
                f,
                round(a, 2),
                round(p, 2),
                round(profile.a, 2),
                round(profile.p, 2),
                predicted,
                predicted_sym,
                observed,
            )
        )
    return rows


@lru_cache(maxsize=1)
def agg_points():
    rows = []
    for f in FANOUTS:
        config = DevicesConfig(
            n_parts=600, n_devices=600, diff_size=D, fanout=f
        )
        profile = _profile(config, build_aggregate_view)
        results = _run(config, build_aggregate_view)
        id_result = results["idIVM"]
        p = (id_result.phase("cache_update") - D) / D
        pg = id_result.phase("view_update") / 2 / D
        g = pg / p if p else 1.0
        a = results["tuple"].phase("view_diff") / D
        predicted = agg_update_speedup(a, p, g)
        predicted_sym = agg_update_speedup(profile.a, profile.p, profile.g)
        observed = results["tuple"].total_cost / id_result.total_cost
        rows.append(
            (
                f,
                round(a, 2),
                round(p, 2),
                round(g, 2),
                round(profile.a, 2),
                round(profile.p, 2),
                round(profile.g, 2),
                predicted,
                predicted_sym,
                observed,
            )
        )
    return rows


SPJ_COLUMNS = (
    "f", "a", "p", "a_sym", "p_sym", "predicted", "predicted_sym", "measured"
)
AGG_COLUMNS = (
    "f", "a", "p", "g", "a_sym", "p_sym", "g_sym",
    "predicted", "predicted_sym", "measured",
)


def test_speedup_model_spj(benchmark):
    rows = spj_points()
    print()
    print("== Equation 1 (SPJ): predicted vs measured speedup ==")
    print(format_table(SPJ_COLUMNS, rows))
    for f, a, p, a_sym, p_sym, predicted, predicted_sym, observed in rows:
        assert abs(predicted - observed) / observed < MEASURED_TOL, (
            f, predicted, observed,
        )
        # The symbolic and measured parameter paths agree (satellite
        # check: the statistics-only estimate is usable for planning).
        assert abs(a_sym - a) / a < A_AGREE_TOL, (f, a_sym, a)
        assert abs(p_sym - p) / p < P_AGREE_TOL, (f, p_sym, p)
        assert abs(predicted_sym - observed) / observed < SYMBOLIC_TOL, (
            f, predicted_sym, observed,
        )
    write_bench_json(
        "speedup_model_spj", {"columns": list(SPJ_COLUMNS), "rows": rows}
    )
    benchmark.pedantic(spj_points, rounds=1, iterations=1)


def test_speedup_model_agg(benchmark):
    rows = agg_points()
    print()
    print("== Equation 2 (aggregate): predicted vs measured speedup ==")
    print(format_table(AGG_COLUMNS, rows))
    for row in rows:
        f, a, p, g, a_sym, p_sym, g_sym = row[:7]
        predicted, predicted_sym, observed = row[7:]
        assert abs(predicted - observed) / observed < MEASURED_TOL, (
            f, predicted, observed,
        )
        assert observed >= 1.0  # Section 6.2: tuple-based can never win here
        assert abs(a_sym - a) / a < A_AGREE_TOL, (f, a_sym, a)
        assert abs(p_sym - p) / p < P_AGREE_TOL, (f, p_sym, p)
        # g_sym is a per-diff-row bound: batch overlap only compresses.
        assert g <= g_sym + 1e-9, (f, g, g_sym)
        assert abs(predicted_sym - observed) / observed < SYMBOLIC_TOL, (
            f, predicted_sym, observed,
        )
    write_bench_json(
        "speedup_model_agg", {"columns": list(AGG_COLUMNS), "rows": rows}
    )
    benchmark.pedantic(agg_points, rounds=1, iterations=1)
