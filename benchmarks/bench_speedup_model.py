"""Section 6 equations 1–2: predicted vs measured speedups.

Sweeps the fanout (which drives both a and p) on the SPJ view and the
aggregate view, and checks the analytical speedup formulas against the
observed access-count ratios.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import SYSTEMS, write_bench_json

from repro.bench import format_table, run_system
from repro.costmodel import agg_update_speedup, spj_update_speedup
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
    build_flat_view,
)

FANOUTS = (5, 10, 20)
D = 100


def _run(config, build_view):
    out = {}
    for label in ("idIVM", "tuple"):
        out[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(config),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_view(db, config),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, config
            ),
        )
    return out


@lru_cache(maxsize=1)
def spj_points():
    rows = []
    for f in FANOUTS:
        config = DevicesConfig(
            n_parts=600, n_devices=600, diff_size=D, fanout=f
        )
        results = _run(config, build_flat_view)
        p = results["idIVM"].writes / D
        a = results["tuple"].phase("view_diff") / D
        predicted = spj_update_speedup(a, p)
        observed = results["tuple"].total_cost / results["idIVM"].total_cost
        rows.append((f, round(a, 2), round(p, 2), predicted, observed))
    return rows


@lru_cache(maxsize=1)
def agg_points():
    rows = []
    for f in FANOUTS:
        config = DevicesConfig(
            n_parts=600, n_devices=600, diff_size=D, fanout=f
        )
        results = _run(config, build_aggregate_view)
        id_result = results["idIVM"]
        p = (id_result.phase("cache_update") - D) / D
        pg = id_result.phase("view_update") / 2 / D
        g = pg / p if p else 1.0
        a = results["tuple"].phase("view_diff") / D
        predicted = agg_update_speedup(a, p, g)
        observed = results["tuple"].total_cost / id_result.total_cost
        rows.append((f, round(a, 2), round(p, 2), predicted, observed))
    return rows


def test_speedup_model_spj(benchmark):
    rows = spj_points()
    print()
    print("== Equation 1 (SPJ): predicted vs measured speedup ==")
    print(format_table(("f", "a", "p", "predicted", "measured"), rows))
    for f, a, p, predicted, observed in rows:
        assert abs(predicted - observed) / observed < 0.05, (f, predicted, observed)
    write_bench_json(
        "speedup_model_spj",
        {"columns": ["f", "a", "p", "predicted", "measured"], "rows": rows},
    )
    benchmark.pedantic(spj_points, rounds=1, iterations=1)


def test_speedup_model_agg(benchmark):
    rows = agg_points()
    print()
    print("== Equation 2 (aggregate): predicted vs measured speedup ==")
    print(format_table(("f", "a", "p", "predicted", "measured"), rows))
    for f, a, p, predicted, observed in rows:
        assert abs(predicted - observed) / observed < 0.05, (f, predicted, observed)
        assert observed >= 1.0  # Section 6.2: tuple-based can never win here
    write_bench_json(
        "speedup_model_agg",
        {"columns": ["f", "a", "p", "predicted", "measured"], "rows": rows},
    )
    benchmark.pedantic(agg_points, rounds=1, iterations=1)
