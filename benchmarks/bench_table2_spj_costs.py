"""Table 2: the access-count cost model for SPJ views.

For update diffs on non-conditional attributes the paper predicts:

* ID-based:     |Du| view index lookups + |Du|·p view tuple accesses
  (zero diff-computation accesses — the i-diff passes straight through);
* tuple-based:  |Du|·a diff computation + |Du|·p lookups + |Du|·p accesses.

This bench runs the flat view V of the running example and checks the
measured phase counts against those closed forms exactly.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import SYSTEMS, write_bench_json

from repro.analysis.cost import estimate_chain_parameters
from repro.bench import format_table, run_system
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_devices_database,
    build_flat_view,
)

CONFIG = DevicesConfig(n_parts=800, n_devices=800, diff_size=100)


@lru_cache(maxsize=1)
def symbolic_profile():
    """(a, p, g) from plan shape + statistics alone (no maintenance run)."""
    db = build_devices_database(CONFIG)
    return estimate_chain_parameters(build_flat_view(db, CONFIG), db, "parts")


@lru_cache(maxsize=1)
def measurements():
    out = {}
    for label in ("idIVM", "tuple"):
        out[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(CONFIG),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_flat_view(db, CONFIG),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, CONFIG
            ),
        )
    return out


def _view_rows_touched() -> int:
    """|DuV| = the number of view rows the diff actually touches."""
    return measurements()["idIVM"].writes


def test_table2_costs(benchmark):
    results = measurements()
    d = CONFIG.diff_size
    touched = _view_rows_touched()
    id_result = results["idIVM"]
    tuple_result = results["tuple"]

    rows = [
        ("ID-based", "diff computation", 0, id_result.phase("view_diff")),
        ("ID-based", "view index lookups", d, id_result.lookups),
        ("ID-based", "view tuple accesses", touched, id_result.writes),
        ("tuple", "view modification", 2 * touched,
         tuple_result.phase("view_update")),
    ]
    print()
    print("== Table 2 — SPJ view costs: model vs measured ==")
    print(format_table(("system", "component", "model", "measured"), rows))

    # ID-based: zero diff computation; exactly |Du| lookups + p·|Du| writes.
    assert id_result.phase("view_diff") == 0
    assert id_result.lookups == d
    assert id_result.total_cost == d + touched
    # tuple-based: view modification is |DuV| lookups + |DuV| accesses;
    # diff computation costs a > 1 accesses per base diff tuple.
    assert tuple_result.phase("view_update") == 2 * touched
    a = tuple_result.phase("view_diff") / d
    assert a > 1.0, a
    # The observed speedup matches Equation 1 within a small tolerance.
    p = touched / d
    predicted = (a + 2 * p) / (1 + p)
    observed = tuple_result.total_cost / id_result.total_cost
    assert abs(predicted - observed) / observed < 0.05, (predicted, observed)
    # The symbolic path (plan + statistics, no run) agrees with the
    # measured parameters: p tightly, a within the probe-dedupe gap.
    profile = symbolic_profile()
    assert abs(profile.p - p) / p < 0.10, (profile.p, p)
    assert abs(profile.a - a) / a < 0.35, (profile.a, a)
    assert profile.g == 1.0  # SPJ view: no grouping compression

    write_bench_json(
        "table2_spj_costs",
        {
            "diff_size": d,
            "view_rows_touched": touched,
            "symbolic": {"a": profile.a, "p": profile.p, "g": profile.g},
            "systems": results,
        },
    )
    benchmark.pedantic(measurements, rounds=1, iterations=1)
