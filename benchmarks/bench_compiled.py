"""Compiled ∆-script closures vs the IR interpreter on BSMA rounds.

What this measures.  Both backends execute the *same* stored ∆-scripts
over the same eight BSMA views; the compiled backend has each compute
step's IR tree lowered once to a specialized Python closure
(:mod:`repro.core.compile`), so a maintenance round stops paying
per-statement IR dispatch.  The smaller the round's diffs, the larger
the share of wall time that dispatch overhead represents — which is the
common case for incremental maintenance (hundreds of script statements,
a handful of touched rows each).

Methodology — paired rounds.  Wall-clock ratios of two separately-timed
runs are noise-prone on shared hosts, so interpreter and compiled
engines run side by side on identically-seeded databases: every round
logs the same modifications to both and times both ``maintain()`` calls
back to back, alternating which backend goes first.  The reported
``wall_speedup`` is the ratio of summed warm-round walls; slow drift of
the host hits both sides of each pair equally.

Correctness is asserted in full: per-view rows equal between backends
and equal to the recompute oracle, and per-view per-phase access counts
reconcile *exactly* every round — the closures must perform precisely
the counted accesses the interpreter performs, never trade counted work
for speed.

The ``>= 2x`` wall-time claim is asserted on the best measured point
(small-diff rounds, the regime the compiler targets); every point must
still clear a 1.3x sanity floor.  Access counts and histogram
observation counts are machine-independent and gated exactly by the
perf gate; ``wall_speedup`` is a machine key the gate records but never
compares.
"""

from __future__ import annotations

import os
import statistics
import time

from functools import lru_cache

from conftest import write_bench_json

from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine
from repro.obs.hist import LogHistogram
from repro.workloads import (
    BsmaConfig,
    BSMA_QUERIES,
    build_bsma_database,
    log_user_updates,
)

#: Small base data, small diffs: warm rounds cost ~10ms interpreted, so
#: per-statement dispatch (what compilation removes) dominates storage.
CONFIG = BsmaConfig(n_users=150, friends_per_user=4, n_tweets=450)

#: Updates logged per round, one measurement point each.
POINTS = (1, 2, 5)

#: Maintenance rounds per point.  Rounds 0-1 warm caches and operator
#: state on both engines; warm statistics use rounds 2+.
ROUNDS = 12
WARMUP = 2

BACKENDS = ("interp", "compiled")

EFFECTIVE_CPUS = len(os.sched_getaffinity(0))

#: Required warm speedup of the best point, and the floor for every
#: point.  Small-diff rounds are the compiler's target regime; larger
#: diffs shift time into shared storage writes both backends pay alike.
SPEEDUP_TARGET = 2.0
SPEEDUP_FLOOR = 1.3


def _make_pair():
    """Identically-seeded (db, engine, views) per backend."""
    out = {}
    for backend in BACKENDS:
        db = build_bsma_database(CONFIG)
        engine = IdIvmEngine(db, exec_backend=backend)
        views = {
            name: engine.define_view(name, build(db, CONFIG))
            for name, build in BSMA_QUERIES.items()
        }
        out[backend] = (db, engine, views)
    return out


def _phase_totals(report) -> dict[str, dict[str, int]]:
    """Zero-filtered per-phase breakdown, comparable across backends."""
    return {
        name: counts.as_dict()
        for name, counts in report.phase_counts.items()
        if counts.total or counts.index_maintenance
    }


def _run_point(updates_per_round: int):
    """ROUNDS paired rounds; returns walls, counts and final contents."""
    pair = _make_pair()
    walls = {b: [] for b in BACKENDS}
    counts = {b: [] for b in BACKENDS}
    totals = {b: 0 for b in BACKENDS}
    try:
        for r in range(ROUNDS):
            # Alternate which backend is timed first so slow host drift
            # lands on both sides of the pair equally often.
            order = BACKENDS if r % 2 == 0 else tuple(reversed(BACKENDS))
            for backend in order:
                db, engine, _ = pair[backend]
                log_user_updates(
                    engine, db, CONFIG, updates_per_round, round_seed=r
                )
                started = time.perf_counter()
                reports = engine.maintain()
                walls[backend].append(time.perf_counter() - started)
                counts[backend].append(
                    {name: _phase_totals(rep) for name, rep in reports.items()}
                )
                totals[backend] += sum(
                    rep.total_cost for rep in reports.values()
                )
        rows = {}
        correct = {}
        for backend in BACKENDS:
            db, _, views = pair[backend]
            rows[backend] = {
                name: sorted(view.table.rows_uncounted())
                for name, view in views.items()
            }
            correct[backend] = all(
                view.table.as_set() == evaluate_plan(view.plan, db).as_set()
                for view in views.values()
            )
        return {
            "updates": updates_per_round,
            "walls": walls,
            "counts": counts,
            "totals": totals,
            "rows": rows,
            "correct": correct,
        }
    finally:
        for _, engine, _ in pair.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()


def _warm(walls: list[float]) -> list[float]:
    return walls[WARMUP:]


def _speedup(point) -> float:
    return sum(_warm(point["walls"]["interp"])) / max(
        sum(_warm(point["walls"]["compiled"])), 1e-9
    )


def _paired_ratios(point) -> list[float]:
    return [
        wi / max(wc, 1e-9)
        for wi, wc in zip(
            _warm(point["walls"]["interp"]), _warm(point["walls"]["compiled"])
        )
    ]


def _wall_hist(point, backend: str) -> LogHistogram:
    hist = LogHistogram(
        f"bench.compiled.u{point['updates']}.{backend}", unit="seconds"
    )
    for wall in point["walls"][backend]:
        hist.observe(wall)
    return hist


@lru_cache(maxsize=1)
def results():
    return [_run_point(updates) for updates in POINTS]


def _print_table():
    print()
    print(
        f"compiled closures vs interpreter — 8 BSMA views, "
        f"n_users={CONFIG.n_users}, {ROUNDS} paired rounds per point"
    )
    print(
        f"{'upd/round':>9}  {'interp_ms':>9}  {'compiled_ms':>11}  "
        f"{'speedup':>7}  {'median_pair':>11}"
    )
    for point in results():
        interp = statistics.median(_warm(point["walls"]["interp"]))
        compiled = statistics.median(_warm(point["walls"]["compiled"]))
        print(
            f"{point['updates']:>9}  {interp * 1e3:>9.2f}  "
            f"{compiled * 1e3:>11.2f}  {_speedup(point):>6.2f}x  "
            f"{statistics.median(_paired_ratios(point)):>10.2f}x"
        )


def _assert_equivalence():
    for point in results():
        label = f"updates={point['updates']}"
        for backend in BACKENDS:
            assert point["correct"][backend], (
                f"{label}: {backend} view does not match the recompute oracle"
            )
        assert point["rows"]["compiled"] == point["rows"]["interp"], (
            f"{label}: view contents differ between backends"
        )
        # Exact access-count reconciliation, every view, every round,
        # phase by phase: compilation must not change counted work.
        for r, (ci, cc) in enumerate(
            zip(point["counts"]["interp"], point["counts"]["compiled"])
        ):
            assert cc == ci, (
                f"{label}: round {r} per-phase counts do not reconcile"
            )
        assert point["totals"]["compiled"] == point["totals"]["interp"], label


def _assert_speedup():
    speedups = {point["updates"]: _speedup(point) for point in results()}
    for updates, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"updates={updates}: compiled speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x sanity floor"
        )
    best = max(speedups.values())
    assert best >= SPEEDUP_TARGET, (
        f"best compiled speedup {best:.2f}x < {SPEEDUP_TARGET}x "
        f"(per-point: {speedups})"
    )


def test_compiled_speedup(benchmark):
    _print_table()
    _assert_equivalence()
    _assert_speedup()
    points = results()
    best = max(_speedup(p) for p in points)
    write_bench_json(
        "compiled",
        {
            "workload": "8 BSMA views, user updates, paired rounds",
            "config": {
                "n_users": CONFIG.n_users,
                "friends_per_user": CONFIG.friends_per_user,
                "n_tweets": CONFIG.n_tweets,
                "rounds": ROUNDS,
                "warmup_rounds": WARMUP,
                "points": list(POINTS),
            },
            "effective_cpus": EFFECTIVE_CPUS,
            "wall_speedup": round(best, 3),
            "note": (
                "wall_speedup = best point's summed-warm-wall ratio "
                "interp/compiled over paired alternating-order rounds, "
                "asserted >= 2x (every point >= 1.3x); per-view per-phase "
                "access counts are asserted exactly equal between backends "
                "every round; wall_hist entries are unit=seconds "
                "LogHistograms over per-round maintenance walls"
            ),
            "points": [
                {
                    "updates_per_round": point["updates"],
                    "total_cost": point["totals"]["interp"],
                    "wall_speedup": round(_speedup(point), 3),
                    "interp_wall_hist": _wall_hist(point, "interp").as_dict(),
                    "compiled_wall_hist": _wall_hist(
                        point, "compiled"
                    ).as_dict(),
                }
                for point in points
            ],
        },
    )

    def setup():
        db = build_bsma_database(CONFIG)
        engine = IdIvmEngine(db, exec_backend="compiled")
        for name, build in BSMA_QUERIES.items():
            engine.define_view(name, build(db, CONFIG))
        log_user_updates(engine, db, CONFIG, 5, round_seed=0)
        return (engine,), {}

    benchmark.pedantic(lambda engine: engine.maintain(), setup=setup, rounds=3)
