"""Fuzzer throughput: cases/second of the differential crosscheck.

Not a paper figure — an infrastructure benchmark.  The crosscheck CI leg
budget is set by this number: every generated case runs the recompute
oracle plus six maintenance strategies over every batch, so cases/second
bounds how much adversarial coverage a nightly run can afford.  The
functional assertion (every case clean) doubles as the fuzz smoke test.
"""

from __future__ import annotations

import time
from functools import lru_cache

from conftest import write_bench_json

from repro.crosscheck import ALL_STRATEGIES, generate_case, run_case

SEED = 0
N_CASES = 25


@lru_cache(maxsize=1)
def sweep():
    start = time.perf_counter()
    divergent = []
    for i in range(N_CASES):
        result = run_case(generate_case(SEED, i))
        if not result.ok:
            divergent.append((i, [str(d) for d in result.divergences]))
    elapsed = time.perf_counter() - start
    return {
        "seed": SEED,
        "cases": N_CASES,
        "strategies": list(ALL_STRATEGIES),
        "elapsed_seconds": round(elapsed, 3),
        "cases_per_second": round(N_CASES / elapsed, 2),
        "divergent": divergent,
    }


def test_crosscheck_throughput(benchmark):
    results = sweep()
    print()
    print("== crosscheck fuzz throughput ==")
    print(
        f"{results['cases']} cases x {len(results['strategies'])} strategies: "
        f"{results['elapsed_seconds']}s ({results['cases_per_second']} cases/s)"
    )
    assert not results["divergent"], results["divergent"]
    write_bench_json("crosscheck", results)
    # Wall time of one representative case, for pytest-benchmark trends.
    case = generate_case(SEED, 3)
    benchmark(lambda: run_case(case))
