"""Figure 8 ablation: ∆-scripts with and without Pass 4 minimization.

The paper: "Semantic minimization is crucial in eliminating inefficiencies
introduced by composing individual operator rules, improving in some cases
performance by more than 50%."  We generate the running example's scripts
with ``optimize=False`` (rules stay in their general probing form) and
with the Figure 8 rewrites enabled, and compare maintenance costs.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import write_bench_json

from repro.bench import format_table, run_system
from repro.core import IdIvmEngine
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_devices_database,
    build_flat_view,
)

CONFIG = DevicesConfig(n_parts=800, n_devices=800, diff_size=100)


@lru_cache(maxsize=1)
def measurements():
    out = {}
    for label, optimize in (("minimized", True), ("naive", False)):
        out[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(CONFIG),
            make_engine=lambda db, o=optimize: IdIvmEngine(db, optimize=o),
            build_view=lambda db: build_flat_view(db, CONFIG),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, CONFIG
            ),
        )
    return out


def test_minimization_benefit(benchmark):
    results = measurements()
    rows = [
        (label, r.total_cost, r.phase("view_diff"), r.phase("view_update"))
        for label, r in results.items()
    ]
    print()
    print("== Figure 8 — semantic minimization ablation (SPJ view) ==")
    print(format_table(("script", "cost", "view diff", "view update"), rows))

    minimized = results["minimized"].total_cost
    naive = results["naive"].total_cost
    # The minimized script performs zero diff-computation accesses for
    # non-conditional updates; the naive one probes Input at every level.
    assert results["minimized"].phase("view_diff") == 0
    assert results["naive"].phase("view_diff") > 0
    # "improving in some cases performance by more than 50%"
    assert naive >= 2.0 * minimized, (naive, minimized)

    write_bench_json("minimization", {"scripts": results})
    benchmark.pedantic(measurements, rounds=1, iterations=1)


def test_minimization_probe_elision(benchmark):
    """Statically, Pass 4 removes every probe from the update branches."""
    from repro.core import ScriptGenerator, generate_base_schemas
    from repro.core.minimize import estimate_probe_count
    from repro.core.script import ComputeDiffStep

    def probes(optimize: bool) -> int:
        db = build_devices_database(CONFIG)
        generator = ScriptGenerator("V", build_flat_view(db, CONFIG), optimize=optimize)
        generated = generator.generate(generate_base_schemas(generator.plan, db))
        return sum(
            estimate_probe_count(step.ir)
            for step in generated.script.steps
            if isinstance(step, ComputeDiffStep)
        )

    with_pass4 = probes(True)
    without = probes(False)
    print()
    print(f"subview probes in the ∆-script: naive={without}, minimized={with_pass4}")
    assert with_pass4 < without
    benchmark.pedantic(lambda: probes(True), rounds=1, iterations=1)
