"""Figure 12b: varying the number of joins j ∈ {2..6}.

The view is extended with j−2 vertically-decomposed 1-to-1 joins on
(did, pid) and the selection is disabled (the paper's construction).
Paper's finding: ID-based cost is *flat* in j while tuple-based cost
grows with every extra join, so the speedup rises monotonically
(1.2 → 3.3) — "arbitrarily high as the complexity of the query
increases".
"""

from __future__ import annotations

from functools import lru_cache

from conftest import (
    BASE_CONFIG,
    SYSTEMS,
    run_devices_point,
    timing_subject,
    write_bench_json,
)

from repro.bench import format_sweep
from repro.workloads import DevicesConfig

JOIN_COUNTS = (2, 3, 4, 5, 6)


@lru_cache(maxsize=1)
def sweep():
    points = []
    for j in JOIN_COUNTS:
        config = DevicesConfig(
            **{**BASE_CONFIG, "joins": j, "with_selection": False}
        )
        point = run_devices_point(config, systems=("idIVM", "tuple"))
        point.parameter = j
        points.append(point)
    return points


def _print_table():
    print()
    print(
        format_sweep(
            "Figure 12b — varying number of joins j (accesses)",
            "j",
            sweep(),
            systems=("idIVM", "tuple"),
            phases=("cache_update", "view_diff", "view_update"),
        )
    )


def _assert_shape():
    points = sweep()
    id_costs = [p.results["idIVM"].total_cost for p in points]
    tuple_costs = [p.results["tuple"].total_cost for p in points]
    speedups = [p.speedup() for p in points]
    # ID-based is unaffected by extra joins (within 10%).
    assert max(id_costs) <= 1.10 * min(id_costs), id_costs
    # Tuple-based grows with every join.
    assert all(b > a for a, b in zip(tuple_costs, tuple_costs[1:])), tuple_costs
    # Hence the speedup increases monotonically and spans a wide range.
    assert all(b > a for a, b in zip(speedups, speedups[1:])), speedups
    assert speedups[-1] / speedups[0] >= 2.0, speedups


def test_fig12b_id_based(benchmark, timing_config):
    _print_table()
    _assert_shape()
    write_bench_json("fig12b_joins", {"parameter": "j", "points": sweep()})
    config = DevicesConfig(
        n_parts=300, n_devices=300, diff_size=60, joins=4, with_selection=False
    )
    setup, target = timing_subject(config, SYSTEMS["idIVM"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12b_tuple_based(benchmark, timing_config):
    config = DevicesConfig(
        n_parts=300, n_devices=300, diff_size=60, joins=4, with_selection=False
    )
    setup, target = timing_subject(config, SYSTEMS["tuple"])
    benchmark.pedantic(target, setup=setup, rounds=3)
