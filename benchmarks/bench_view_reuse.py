"""Section 9 extension: insert i-diffs answered from the view.

The paper's future work: "more elaborate rules for i-diffs avoid base
table accesses by instead utilizing data that potentially already exist
in the view", deciding *dynamically at run time* whether a base access
is needed.  This bench measures the implemented variant on a bushy-plan
view (orders ⋈ (products ⋈ stock ⋈ suppliers)) under insert-only batches of orders
for mostly already-viewed products: a view hit costs one index probe
where the base probe walks the two-table subtree.
"""

from __future__ import annotations

import random
from functools import lru_cache

from conftest import write_bench_json

from repro.algebra import Join, equi_join, evaluate_plan, rename, scan
from repro.bench import format_table
from repro.core import IdIvmEngine
from repro.expr import col
from repro.storage import Database

N_PRODUCTS = 400
N_ORDERS = 2_000
NEW_ORDERS = 200
HOT_SKUS = 120  # new orders draw from this prefix -> mostly view hits


def build_db() -> Database:
    rng = random.Random(41)
    db = Database()
    db.create_table("orders", ("oid", "sku"), ("oid",))
    db.create_table("products", ("p_sku", "price"), ("p_sku",))
    db.create_table("stock", ("s_sku", "qty"), ("s_sku",))
    db.create_table("suppliers", ("u_sku", "supplier"), ("u_sku",))
    db.table("products").load(
        (f"S{i}", rng.randint(1, 99)) for i in range(N_PRODUCTS)
    )
    db.table("stock").load(
        (f"S{i}", rng.randint(0, 50)) for i in range(N_PRODUCTS)
    )
    db.table("suppliers").load(
        (f"S{i}", f"vendor{i % 7}") for i in range(N_PRODUCTS)
    )
    db.table("orders").load(
        (i, f"S{rng.randrange(HOT_SKUS)}") for i in range(N_ORDERS)
    )
    return db


def bushy_view(db: Database):
    product_info = equi_join(
        scan(db, "products"),
        rename(scan(db, "stock"), {"s_sku": "st_sku"}),
        [("p_sku", "st_sku")],
    )
    product_info = equi_join(
        product_info,
        rename(scan(db, "suppliers"), {"u_sku": "sup_sku"}),
        [("p_sku", "sup_sku")],
    )
    return Join(scan(db, "orders"), product_info, col("sku").eq(col("p_sku")))


def _run(view_reuse: bool) -> int:
    rng = random.Random(42)
    db = build_db()
    engine = IdIvmEngine(db, view_reuse=view_reuse)
    view = engine.define_view("V", bushy_view(db))
    for i in range(NEW_ORDERS):
        engine.log.insert("orders", (10_000 + i, f"S{rng.randrange(HOT_SKUS)}"))
    report = engine.maintain()["V"]
    assert view.table.as_set() == evaluate_plan(view.plan, db).as_set()
    return report.total_cost


@lru_cache(maxsize=1)
def measurements():
    return {"base probes": _run(False), "view reuse": _run(True)}


def test_view_reuse_benefit(benchmark):
    results = measurements()
    rows = list(results.items())
    rows.append(
        ("saving", f"{results['base probes'] / results['view reuse']:.2f}x")
    )
    print()
    print("== Section 9 — insert i-diffs answered from the view ==")
    print(format_table(("strategy", "accesses"), rows))
    # The bushy sibling costs three hops per insert without reuse; a
    # view hit costs one.
    assert results["view reuse"] < results["base probes"]
    assert results["base probes"] / results["view reuse"] > 1.4
    write_bench_json(
        "view_reuse",
        {
            "accesses": results,
            "saving": results["base probes"] / results["view reuse"],
        },
    )
    benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
