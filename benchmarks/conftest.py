"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables/figures:
it computes the full access-count sweep once (cached per session),
prints the paper-style table, asserts the qualitative findings hold, and
measures wall time with pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Callable, Sequence

import pytest

from repro.baselines import SdbtEngine, TupleIvmEngine
from repro.bench import (
    SweepPoint,
    SystemResult,
    run_gate,
    run_system,
    sweep_point_to_dict,
    system_result_to_dict,
)
from repro.bench.perfgate import DEFAULT_WALL_SLACK
from repro.core import IdIvmEngine
from repro.storage import AccessCounts
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
)

#: Figure 12 experiments: scaled-down defaults preserving the paper's
#: ratios (parts : devices : devices_parts = 1 : 1 : 10, d=200, s=20%,
#: f=10, j=2 — Figure 11b).
BASE_CONFIG = dict(n_parts=1_000, n_devices=1_000, diff_size=200)

SYSTEMS: dict[str, Callable] = {
    "idIVM": IdIvmEngine,
    "tuple": TupleIvmEngine,
    "SDBT-fixed": lambda db: SdbtEngine(db, streamed_tables=["parts"]),
    "SDBT-streams": SdbtEngine,
}


#: Schema version of the ``BENCH_<name>.json`` envelope.
BENCH_SCHEMA_VERSION = 1

#: The repo root, where the ``BENCH_*.json`` files live.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Committed reference payloads for the perf-regression gate
#: (``make perf-gate`` / the CI perf-gate job).
BASELINES_DIR = Path(__file__).resolve().parent / "baselines"


def _jsonable(obj: object) -> object:
    if isinstance(obj, SystemResult):
        return system_result_to_dict(obj)
    if isinstance(obj, SweepPoint):
        return sweep_point_to_dict(obj)
    if isinstance(obj, AccessCounts):
        return obj.as_dict()
    raise TypeError(f"{type(obj).__name__} is not JSON-serializable")


def _provenance() -> dict:
    """Where this payload came from: commit, wall time, interpreter.

    Benchmark jsons travel (CI artifacts, perf triage); a payload that
    cannot say which commit produced it is unusable a week later.  The
    perf gate skips this block — it is volatile by construction.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 - no git, shallow checkout, ...
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def write_bench_json(name: str, data: object) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root.

    ``data`` may contain :class:`SystemResult`, :class:`SweepPoint` and
    :class:`AccessCounts` values anywhere — they are serialized through
    :func:`repro.bench.system_result_to_dict` and friends, so every file
    carries the full per-phase access breakdown.  Benchmarks call this
    after their assertions pass, so a file on disk is also a record that
    the paper's qualitative finding held for that run.

    Every envelope also carries a ``provenance`` block and a ``metrics``
    snapshot of the process-wide registry at write time (round-latency
    and fold-size histograms, cache hit counters, ...) — both excluded
    from the perf gate's exact comparison.
    """
    from repro.obs import metrics

    payload = {
        "schema": "repro.bench",
        "version": BENCH_SCHEMA_VERSION,
        "name": name,
        "provenance": _provenance(),
        "metrics": metrics.registry().as_dict(),
        "data": data,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    # sort_keys: byte-identical output for identical runs (diffable in CI).
    text = json.dumps(payload, indent=2, sort_keys=True, default=_jsonable)
    path.write_text(text + "\n")
    if os.environ.get("REPRO_PERF_GATE"):
        # Perf-regression gate: access-count metrics must match the
        # committed baseline exactly (they are deterministic); wall
        # times only canary gross slowdowns via a slack factor.
        slack = float(
            os.environ.get("REPRO_PERF_GATE_SLACK", DEFAULT_WALL_SLACK)
        )
        violations = run_gate(name, json.loads(text), BASELINES_DIR, slack)
        if violations:
            pytest.fail(
                f"perf gate: BENCH_{name}.json regressed vs "
                f"benchmarks/baselines/ ({len(violations)} violation(s)):\n"
                + "\n".join(f"  - {v}" for v in violations),
                pytrace=False,
            )
    return path


def run_devices_point(
    config: DevicesConfig,
    systems: Sequence[str] = ("idIVM", "tuple", "SDBT-fixed", "SDBT-streams"),
) -> SweepPoint:
    """One Figure 12 measurement: the aggregate view V' under d price
    updates, for every requested system."""
    results: dict[str, SystemResult] = {}
    for label in systems:
        results[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(config),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_aggregate_view(db, config),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, config
            ),
        )
        assert results[label].correct, f"{label} produced a wrong view"
    return SweepPoint(parameter=None, results=results)


def timing_subject(config: DevicesConfig, engine_factory: Callable):
    """Setup/target pair for benchmark.pedantic: a fresh engine + logged
    batch per round, timing only the maintenance call."""

    def setup():
        db = build_devices_database(config)
        engine = engine_factory(db)
        engine.define_view("V", build_aggregate_view(db, config))
        apply_price_updates(engine, db, config)
        return (engine,), {}

    def target(engine):
        engine.maintain()

    return setup, target


#: Smaller configuration for the wall-clock measurements so that
#: pytest-benchmark's repeated rounds stay quick.
TIMING_CONFIG = DevicesConfig(n_parts=300, n_devices=300, diff_size=60)


@pytest.fixture(scope="session")
def timing_config() -> DevicesConfig:
    return TIMING_CONFIG
