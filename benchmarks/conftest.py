"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables/figures:
it computes the full access-count sweep once (cached per session),
prints the paper-style table, asserts the qualitative findings hold, and
measures wall time with pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable, Sequence

import pytest

from repro.baselines import SdbtEngine, TupleIvmEngine
from repro.bench import SweepPoint, SystemResult, run_system
from repro.core import IdIvmEngine
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
)

#: Figure 12 experiments: scaled-down defaults preserving the paper's
#: ratios (parts : devices : devices_parts = 1 : 1 : 10, d=200, s=20%,
#: f=10, j=2 — Figure 11b).
BASE_CONFIG = dict(n_parts=1_000, n_devices=1_000, diff_size=200)

SYSTEMS: dict[str, Callable] = {
    "idIVM": IdIvmEngine,
    "tuple": TupleIvmEngine,
    "SDBT-fixed": lambda db: SdbtEngine(db, streamed_tables=["parts"]),
    "SDBT-streams": SdbtEngine,
}


def run_devices_point(
    config: DevicesConfig,
    systems: Sequence[str] = ("idIVM", "tuple", "SDBT-fixed", "SDBT-streams"),
) -> SweepPoint:
    """One Figure 12 measurement: the aggregate view V' under d price
    updates, for every requested system."""
    results: dict[str, SystemResult] = {}
    for label in systems:
        results[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(config),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_aggregate_view(db, config),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, config
            ),
        )
        assert results[label].correct, f"{label} produced a wrong view"
    return SweepPoint(parameter=None, results=results)


def timing_subject(config: DevicesConfig, engine_factory: Callable):
    """Setup/target pair for benchmark.pedantic: a fresh engine + logged
    batch per round, timing only the maintenance call."""

    def setup():
        db = build_devices_database(config)
        engine = engine_factory(db)
        engine.define_view("V", build_aggregate_view(db, config))
        apply_price_updates(engine, db, config)
        return (engine,), {}

    def target(engine):
        engine.maintain()

    return setup, target


#: Smaller configuration for the wall-clock measurements so that
#: pytest-benchmark's repeated rounds stay quick.
TIMING_CONFIG = DevicesConfig(n_parts=300, n_devices=300, diff_size=60)


@pytest.fixture(scope="session")
def timing_config() -> DevicesConfig:
    return TIMING_CONFIG
