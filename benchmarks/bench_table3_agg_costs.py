"""Table 3: the access-count cost model for aggregate views with an
intermediate cache.

For update diffs on non-conditional attributes the paper predicts:

* ID-based: cache diff computation 0, cache index lookups |Du|, cache
  tuple accesses |Du|·p, view diff computation 0 (UPDATE..RETURNING),
  view index lookups + accesses |Du|·p·g each;
* tuple-based: view diff computation |Du|·a, view lookups/accesses
  |Du|·p·g each (no cache).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import SYSTEMS, write_bench_json

from repro.analysis.cost import estimate_chain_parameters
from repro.bench import format_table, run_system
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
)

CONFIG = DevicesConfig(n_parts=800, n_devices=800, diff_size=100)


@lru_cache(maxsize=1)
def symbolic_profile():
    """(a, p, g) from plan shape + statistics alone (no maintenance run)."""
    db = build_devices_database(CONFIG)
    return estimate_chain_parameters(
        build_aggregate_view(db, CONFIG), db, "parts"
    )


@lru_cache(maxsize=1)
def measurements():
    out = {}
    for label in ("idIVM", "tuple"):
        out[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(CONFIG),
            make_engine=SYSTEMS[label],
            build_view=lambda db: build_aggregate_view(db, CONFIG),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, CONFIG
            ),
        )
    return out


def test_table3_costs(benchmark):
    results = measurements()
    d = CONFIG.diff_size
    id_result = results["idIVM"]
    tuple_result = results["tuple"]

    cache_cost = id_result.phase("cache_update")
    view_cost = id_result.phase("view_update")
    # Derive p and g back from the measurement (cache = d lookups + dp
    # writes; view = pg lookups + pg writes).
    p = (cache_cost - d) / d
    pg_rows = view_cost / 2

    rows = [
        ("ID-based", "cache diff computation", 0, id_result.phase("cache_diff")),
        ("ID-based", "cache update (|Du|(1+p))", d + int(p * d), cache_cost),
        ("ID-based", "view diff computation", 0, id_result.phase("view_diff")),
        ("ID-based", "view update (2|Du|pg)", int(2 * pg_rows), view_cost),
        ("tuple", "view diff computation (|Du|a)", "> |Du|",
         tuple_result.phase("view_diff")),
        ("tuple", "view update (2|Du|pg)", int(2 * pg_rows),
         tuple_result.phase("view_update")),
    ]
    print()
    print("== Table 3 — aggregate view costs: model vs measured ==")
    print(format_table(("system", "component", "model", "measured"), rows))

    # Structural checks from Table 3.
    assert id_result.phase("cache_diff") == 0
    assert id_result.phase("view_diff") == 0
    assert cache_cost >= d  # one lookup per diff tuple at least
    assert view_cost == tuple_result.phase("view_update")
    a = tuple_result.phase("view_diff") / d
    # Appendix A.2.1: a >= 1 + p always (the reason the tuple-based
    # approach can never win this case).
    assert a >= 1 + p - 0.01, (a, p)
    observed = tuple_result.total_cost / id_result.total_cost
    predicted = (a + 2 * p * (pg_rows / (p * d))) / (
        1 + p + 2 * p * (pg_rows / (p * d))
    )
    assert abs(predicted - observed) / observed < 0.05, (predicted, observed)
    assert observed > 1.0
    # Symbolic path agreement: p tightly, a within the probe-dedupe
    # gap, and its per-diff-row g bounds the batch-level compression.
    profile = symbolic_profile()
    assert abs(profile.p - p) / p < 0.10, (profile.p, p)
    assert abs(profile.a - a) / a < 0.35, (profile.a, a)
    g = pg_rows / (p * d)
    assert g <= profile.g + 1e-9, (g, profile.g)

    write_bench_json(
        "table3_agg_costs",
        {
            "diff_size": d,
            "symbolic": {"a": profile.a, "p": profile.p, "g": profile.g},
            "systems": results,
        },
    )
    benchmark.pedantic(measurements, rounds=1, iterations=1)
