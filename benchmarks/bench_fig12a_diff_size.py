"""Figure 12a: varying the base-table diff size d ∈ {100..500}.

Paper's finding: the ID-based speedup over tuple-based IVM stays within
4–5 across the whole range (with a slight downward trend caused by
PostgreSQL page-buffer warming, which an in-memory engine has no
analogue of — our series is flat).  SDBT-fixed tracks idIVM closely;
SDBT-streams is substantially slower.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import (
    BASE_CONFIG,
    SYSTEMS,
    run_devices_point,
    timing_subject,
    write_bench_json,
)

from repro.bench import format_sweep
from repro.workloads import DevicesConfig

DIFF_SIZES = (100, 200, 300, 400, 500)


@lru_cache(maxsize=1)
def sweep():
    points = []
    for d in DIFF_SIZES:
        config = DevicesConfig(**{**BASE_CONFIG, "diff_size": d})
        point = run_devices_point(config)
        point.parameter = d
        points.append(point)
    return points


def _print_table():
    print()
    print(
        format_sweep(
            "Figure 12a — varying diff size d (accesses)",
            "d",
            sweep(),
            systems=("idIVM", "tuple", "SDBT-fixed", "SDBT-streams"),
            phases=("cache_update", "view_diff", "view_update", "map_update"),
        )
    )


def _assert_shape():
    points = sweep()
    for point in points:
        ratio = point.speedup()
        assert 2.0 <= ratio <= 12.0, f"d={point.parameter}: speedup {ratio:.2f}"
        # SDBT-fixed is at least as cheap as idIVM (no cache writes);
        # SDBT-streams pays map maintenance on top.
        assert (
            point.results["SDBT-fixed"].total_cost
            <= point.results["idIVM"].total_cost
        )
        assert (
            point.results["SDBT-streams"].total_cost
            > point.results["idIVM"].total_cost
        )
    # Costs grow roughly linearly with d for every system.
    first, last = points[0], points[-1]
    for label in ("idIVM", "tuple"):
        growth = last.results[label].total_cost / first.results[label].total_cost
        assert 3.0 <= growth <= 7.0, f"{label} growth {growth:.2f} not ~5x"


def test_fig12a_id_based(benchmark, timing_config):
    _print_table()
    _assert_shape()
    write_bench_json("fig12a_diff_size", {"parameter": "d", "points": sweep()})
    setup, target = timing_subject(timing_config, SYSTEMS["idIVM"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12a_tuple_based(benchmark, timing_config):
    setup, target = timing_subject(timing_config, SYSTEMS["tuple"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12a_sdbt_fixed(benchmark, timing_config):
    setup, target = timing_subject(timing_config, SYSTEMS["SDBT-fixed"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12a_sdbt_streams(benchmark, timing_config):
    setup, target = timing_subject(timing_config, SYSTEMS["SDBT-streams"])
    benchmark.pedantic(target, setup=setup, rounds=3)
