"""Cache-placement ablation (paper Section 4, footnote 6).

Compares the three cache policies on two aggregate views:

* the running example V' (a key-join chain — every policy except
  ``never`` caches it);
* the BSMA Q*1 friends-of-friends view (an M:N self-join — the strict
  ``fk`` policy refuses the cache and degenerates to recomputation,
  which is what the permissive default avoids).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import write_bench_json

from repro.bench import format_table, run_system
from repro.core import IdIvmEngine
from repro.workloads import (
    BsmaConfig,
    BSMA_QUERIES,
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_bsma_database,
    build_devices_database,
    log_user_updates,
)

POLICIES = ("equi", "fk", "never")

DEVICES_CONFIG = DevicesConfig(n_parts=600, n_devices=600, diff_size=100)
BSMA_CONFIG = BsmaConfig(n_users=400, friends_per_user=6, n_tweets=1_600)


@lru_cache(maxsize=1)
def devices_results():
    out = {}
    for policy in POLICIES:
        out[policy] = run_system(
            policy,
            db_factory=lambda: build_devices_database(DEVICES_CONFIG),
            # cost_select=False: the ablation studies each policy as-is;
            # cost-based candidate selection would override the policy
            # under study with whichever variant prices cheapest.
            make_engine=lambda db, p=policy: IdIvmEngine(
                db, cache_policy=p, cost_select=False
            ),
            build_view=lambda db: build_aggregate_view(db, DEVICES_CONFIG),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, DEVICES_CONFIG
            ),
        )
    return out


@lru_cache(maxsize=1)
def fof_results():
    out = {}
    for policy in POLICIES:
        out[policy] = run_system(
            policy,
            db_factory=lambda: build_bsma_database(BSMA_CONFIG),
            make_engine=lambda db, p=policy: IdIvmEngine(
                db, cache_policy=p, cost_select=False
            ),
            build_view=lambda db: BSMA_QUERIES["Q*1"](db, BSMA_CONFIG),
            log_modifications=lambda engine, db: log_user_updates(
                engine, db, BSMA_CONFIG, 50
            ),
        )
    return out


def test_cache_policy_ablation(benchmark):
    rows = []
    for name, results in (("V'", devices_results()), ("Q*1", fof_results())):
        for policy, r in results.items():
            rows.append((name, policy, r.total_cost, "yes" if r.correct else "NO"))
    print()
    print("== Cache policy ablation ==")
    print(format_table(("view", "policy", "cost", "ok"), rows))

    devices = devices_results()
    fof = fof_results()
    # All policies stay correct.
    assert all(r.correct for r in list(devices.values()) + list(fof.values()))
    # On the key-join chain, fk and equi agree; dropping the cache hurts.
    assert devices["fk"].total_cost == devices["equi"].total_cost
    assert devices["never"].total_cost > devices["equi"].total_cost
    # On the M:N friends-of-friends view, the strict policy refuses the
    # cache and pays recomputation like 'never' does.
    assert fof["equi"].total_cost < fof["fk"].total_cost
    assert fof["fk"].total_cost == fof["never"].total_cost

    write_bench_json(
        "ablation_cache_policy", {"devices": devices, "fof_qstar1": fof}
    )
    benchmark.pedantic(devices_results, rounds=1, iterations=1)
