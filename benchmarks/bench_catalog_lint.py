"""Catalog-scale lint: cold vs warm through the incremental cache.

A production catalog holds thousands of views over a handful of base
tables; re-linting it after one view changes must not re-analyze the
other 999.  This bench lints a deterministic catalog slice
(:mod:`repro.catalog`) twice against a fresh cache directory — cold
(every view generates + analyzes) and warm (every view replays frozen
diagnostics and sharing facts) — and records both wall times, the
speedup, and the sharing-pass findings (SHARE7xx counts are exact-gated
by the perf gate; the seeded overlap groups make them a fixed function
of the catalog config).
"""

from __future__ import annotations

import tempfile
import time
from functools import lru_cache
from pathlib import Path

from conftest import write_bench_json

from repro.analysis import AnalysisCache, analyze_catalog
from repro.bench import format_table
from repro.catalog import CatalogConfig, build_catalog_database, catalog_views
from repro.cli import _lint_view_entry

#: Catalog slice for the gate: big enough that warm-vs-cold dominates
#: fixed costs (catalog construction, cache (de)serialization, the
#: sharing pass itself), small enough for the perf-gate budget.  All
#: overlap groups / duplicates / subsumed views are inside the slice,
#: so the SHARE7xx counts match the full 1,000-view catalog's seeds.
N_VIEWS = 250

#: Acceptance floor: a warm re-lint must be at least this much faster.
MIN_WARM_SPEEDUP = 10.0


def _lint_once(cache_dir: Path) -> dict:
    config = CatalogConfig(n_views=N_VIEWS)
    db = build_catalog_database(config)
    cache = AnalysisCache(cache_dir)
    started = time.perf_counter()
    facts_list = []
    n_errors = n_warnings = 0
    for label, plan in catalog_views(db, config):
        report, _, facts = _lint_view_entry(
            label, plan, db, cache, with_compiled=False
        )
        facts_list.append(facts)
        n_errors += len(report.errors)
        n_warnings += len(report.warnings)
    cache.flush()
    sharing = analyze_catalog(facts_list)
    elapsed = time.perf_counter() - started
    by_rule: dict[str, int] = {}
    for diag in sharing.diagnostics:
        by_rule[diag.rule_id] = by_rule.get(diag.rule_id, 0) + 1
    return {
        "views": len(facts_list),
        "errors": n_errors,
        "warnings": n_warnings,
        "sharing": by_rule,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "wall_seconds": elapsed,
    }


@lru_cache(maxsize=1)
def measurements() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = _lint_once(Path(tmp))
        warm = _lint_once(Path(tmp))
    return {"cold": cold, "warm": warm}


def test_catalog_lint_cache(benchmark):
    results = measurements()
    cold, warm = results["cold"], results["warm"]
    speedup = cold["wall_seconds"] / warm["wall_seconds"]

    print()
    print("== catalog lint: cold vs warm analysis cache ==")
    rows = [
        (
            run,
            data["views"],
            data["errors"],
            data["cache_hits"],
            data["cache_misses"],
            f"{data['wall_seconds']:.2f}s",
        )
        for run, data in results.items()
    ]
    rows.append(("speedup", "", "", "", "", f"{speedup:.1f}x"))
    print(
        format_table(
            ("run", "views", "errors", "hits", "misses", "wall"), rows
        )
    )

    # The catalog must lint clean, cold and warm must agree, the warm
    # run must be answered entirely from the cache, and the seeded
    # overlap must surface as priced SHARE701 opportunities.
    assert cold["errors"] == 0 and warm["errors"] == 0
    assert cold["warnings"] == warm["warnings"]
    assert cold["sharing"] == warm["sharing"]
    assert cold["cache_misses"] == cold["views"]
    assert warm["cache_hits"] == warm["views"]
    assert warm["cache_misses"] == 0
    assert cold["sharing"].get("SHARE701", 0) >= 1
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm catalog lint only {speedup:.1f}x faster than cold "
        f"(floor: {MIN_WARM_SPEEDUP}x)"
    )

    write_bench_json(
        "catalog_lint",
        {
            "n_views": N_VIEWS,
            "cold": {k: v for k, v in cold.items() if k != "wall_seconds"},
            "warm": {k: v for k, v in warm.items() if k != "wall_seconds"},
            "cold_wall": {"wall_seconds": cold["wall_seconds"]},
            "warm_wall": {"wall_seconds": warm["wall_seconds"]},
            "wall_speedup": speedup,
        },
    )

    def warm_relint():
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            _lint_once(Path(tmp))
            _lint_once(Path(tmp))

    benchmark.pedantic(warm_relint, rounds=1, iterations=1)
