"""Figure 12c: varying the selectivity s ∈ {6, 12, 25, 50, 100}%.

Higher selectivity lets more devices tuples into the intermediate cache,
raising the ID-based approach's cache-update cost.  Paper's finding: the
speedup falls from 15.9x at 6% to 1.2x at 100%, but never drops below 1
— "ID-based IVM is at least on par with tuple-based IVM".
"""

from __future__ import annotations

from functools import lru_cache

from conftest import (
    BASE_CONFIG,
    SYSTEMS,
    run_devices_point,
    timing_subject,
    write_bench_json,
)

from repro.bench import format_sweep
from repro.workloads import DevicesConfig

SELECTIVITIES = (0.06, 0.12, 0.25, 0.50, 1.00)


@lru_cache(maxsize=1)
def sweep():
    points = []
    for s in SELECTIVITIES:
        config = DevicesConfig(**{**BASE_CONFIG, "selectivity": s})
        point = run_devices_point(config, systems=("idIVM", "tuple"))
        point.parameter = int(s * 100)
        points.append(point)
    return points


def _print_table():
    print()
    print(
        format_sweep(
            "Figure 12c — varying selectivity s%% (accesses)",
            "s%",
            sweep(),
            systems=("idIVM", "tuple"),
            phases=("cache_update", "view_diff", "view_update"),
        )
    )


def _assert_shape():
    points = sweep()
    speedups = [p.speedup() for p in points]
    # Monotone decline with rising selectivity...
    assert all(b < a for a, b in zip(speedups, speedups[1:])), speedups
    # ...never below parity, and with a wide high end at low selectivity.
    assert speedups[-1] >= 1.0, speedups
    assert speedups[0] >= 3 * speedups[-1], speedups
    # The ID-based cache-update cost is what grows with s.
    cache_costs = [p.results["idIVM"].phase("cache_update") for p in points]
    assert all(b > a for a, b in zip(cache_costs, cache_costs[1:])), cache_costs


def test_fig12c_id_based(benchmark, timing_config):
    _print_table()
    _assert_shape()
    write_bench_json(
        "fig12c_selectivity", {"parameter": "s_pct", "points": sweep()}
    )
    setup, target = timing_subject(timing_config, SYSTEMS["idIVM"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12c_tuple_based(benchmark, timing_config):
    setup, target = timing_subject(timing_config, SYSTEMS["tuple"])
    benchmark.pedantic(target, setup=setup, rounds=3)
