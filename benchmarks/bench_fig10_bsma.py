"""Figure 10: ID- vs tuple-based IVM on the social-analytics workload.

Eight views over the BSMA-like schema (Q7, Q10, Q11, Q15, Q18 from the
benchmark; Q*1–Q*3 with aggregates affected by the updates), maintained
under 100 updates on users.tweetsnum / favornum.

Paper's findings: speedups between 4x and 54x; the long join chains
(Q10) and chain-plus-late-selection (Q*1) produce the extremes, while
Q15's huge flat view is view-update-bound and bottoms out around 4x —
"even in this case the ID-based approach outperforms the tuple-based
approach".
"""

from __future__ import annotations

from functools import lru_cache

from conftest import write_bench_json

from repro.algebra import evaluate_plan
from repro.baselines import TupleIvmEngine
from repro.bench import format_table
from repro.core import IdIvmEngine
from repro.workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    build_bsma_database,
    log_user_updates,
)

CONFIG = BsmaConfig(n_users=600, friends_per_user=8, n_tweets=2_400)
N_UPDATES = 100

#: Telemetry stage: seeded rounds on one id engine carrying all eight
#: views, to collect per-view observed-lag and round-latency histograms
#: for the payload.  Counts are deterministic; the latency *values* are
#: wall clock and slack-gated by the perf gate ("seconds" histograms).
TELEMETRY_ROUNDS = 4
TELEMETRY_UPDATES = 25


@lru_cache(maxsize=1)
def run_telemetry():
    from repro.obs import metrics

    db = build_bsma_database(CONFIG)
    engine = IdIvmEngine(db)
    for name, build in BSMA_QUERIES.items():
        engine.define_view(name, build(db, CONFIG))
    with metrics.scoped() as reg:
        for round_seed in range(TELEMETRY_ROUNDS):
            log_user_updates(
                engine, db, CONFIG, TELEMETRY_UPDATES, round_seed=round_seed
            )
            engine.maintain()
        views = {}
        for name in BSMA_QUERIES:
            lag = engine.freshness.lag_histogram(name)
            views[name] = {
                "observed_lag": lag.as_dict(),
                "round_seconds": reg.loghist(
                    f"view.round_seconds.{name}"
                ).as_dict(),
            }
        return {
            "rounds": TELEMETRY_ROUNDS,
            "updates_per_round": TELEMETRY_UPDATES,
            "views": views,
            "round_seconds": reg.loghist("engine.round_seconds").as_dict(),
        }


@lru_cache(maxsize=1)
def run_workload():
    rows = []
    for name, build in BSMA_QUERIES.items():
        costs = {}
        for label, engine_cls in (("id", IdIvmEngine), ("tuple", TupleIvmEngine)):
            db = build_bsma_database(CONFIG)
            engine = engine_cls(db)
            view = engine.define_view(name, build(db, CONFIG))
            log_user_updates(engine, db, CONFIG, N_UPDATES)
            reports = engine.maintain()
            expected = evaluate_plan(view.plan, db).as_set()
            assert view.table.as_set() == expected, (name, label)
            costs[label] = reports[name].total_cost
        speedup = costs["tuple"] / max(costs["id"], 1)
        rows.append((name, costs["id"], costs["tuple"], speedup))
    return rows


def _print_table():
    rows = run_workload()
    print()
    print("== Figure 10 — BSMA views: 100 updates on users(tweetsnum, favornum) ==")
    print(
        format_table(
            ("query", "ID-IVM cost", "Tuple-IVM cost", "speedup"), rows
        )
    )


def _assert_shape():
    rows = {name: s for name, _i, _t, s in run_workload()}
    # Every query favours the ID-based approach.
    assert all(s > 1.0 for s in rows.values()), rows
    # The paper's extremes: long chains (Q10, Q*1) far above the
    # view-update-bound Q15, which is the (low) floor of the suite.
    assert rows["Q10"] > rows["Q15"], rows
    assert rows["Q*1"] > rows["Q15"], rows
    assert min(rows.values()) == rows["Q15"] or rows["Q15"] <= 6.0, rows
    # And a wide overall spread, as in the paper's 4x-54x.
    assert max(rows.values()) / min(rows.values()) >= 3.0, rows


def test_fig10_workload(benchmark):
    _print_table()
    _assert_shape()
    write_bench_json(
        "fig10_bsma",
        {
            "columns": ["query", "id_cost", "tuple_cost", "speedup"],
            "rows": run_workload(),
            "telemetry": run_telemetry(),
        },
    )

    def target():
        db = build_bsma_database(CONFIG)
        engine = IdIvmEngine(db)
        engine.define_view("Q7", BSMA_QUERIES["Q7"](db, CONFIG))
        log_user_updates(engine, db, CONFIG, N_UPDATES)
        engine.maintain()

    benchmark.pedantic(target, rounds=1, iterations=1)
