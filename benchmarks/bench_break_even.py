"""IVM vs recomputation break-even (paper Section 7.2, footnote 9).

"Similar trends can be observed for diff sizes up to 15,000 tuples.
This is the point where it is beneficial to recompute the view rather
than apply IVM."  We sweep the updated fraction of the parts table and
compare both IVM engines against full recomputation: tuple-based IVM
crosses the recomputation line as the diff grows, while ID-based IVM —
whose per-diff-row cost is a fraction of the tuple-based one — stays
below it far longer.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import SYSTEMS, write_bench_json

from repro.baselines import RecomputeEngine
from repro.bench import format_table, run_system
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_devices_database,
    build_flat_view,
)

N_PARTS = 1_000
FRACTIONS = (0.05, 0.25, 0.50, 1.00)


def _config(fraction: float) -> DevicesConfig:
    return DevicesConfig(
        n_parts=N_PARTS, n_devices=N_PARTS, diff_size=int(N_PARTS * fraction)
    )


@lru_cache(maxsize=1)
def sweep():
    rows = []
    for fraction in FRACTIONS:
        config = _config(fraction)
        costs = {}
        for label, factory in (
            ("idIVM", SYSTEMS["idIVM"]),
            ("tuple", SYSTEMS["tuple"]),
            ("recompute", RecomputeEngine),
        ):
            result = run_system(
                label,
                db_factory=lambda: build_devices_database(config),
                make_engine=factory,
                build_view=lambda db: build_flat_view(db, config),
                log_modifications=lambda engine, db: apply_price_updates(
                    engine, db, config
                ),
            )
            assert result.correct, label
            costs[label] = result.total_cost
        rows.append((int(fraction * 100), costs["idIVM"], costs["tuple"], costs["recompute"]))
    return rows


def test_break_even(benchmark):
    rows = sweep()
    print()
    print("== Footnote 9 — IVM vs recomputation break-even ==")
    print(
        format_table(
            ("updated %", "idIVM", "tuple-IVM", "recompute"), rows
        )
    )
    by_fraction = {f: (i, t, r) for f, i, t, r in rows}
    # At small diffs both IVM engines beat recomputation handily.
    small_id, small_tuple, small_rec = by_fraction[5]
    assert small_id < small_rec / 10
    assert small_tuple < small_rec
    # Churning the whole table pushes tuple-based IVM past recomputation
    # (the footnote's break-even) while ID-based IVM stays below it.
    full_id, full_tuple, full_rec = by_fraction[100]
    assert full_tuple > full_rec
    assert full_id < full_rec
    # IVM costs grow with the diff; recomputation is flat in it.
    id_costs = [i for _f, i, _t, _r in rows]
    assert id_costs == sorted(id_costs)
    write_bench_json(
        "break_even",
        {
            "columns": ["updated_pct", "idIVM", "tuple", "recompute"],
            "rows": rows,
        },
    )
    benchmark.pedantic(sweep, rounds=1, iterations=1)
