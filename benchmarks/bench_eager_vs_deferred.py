"""Eager vs deferred maintenance (paper Section 3).

The paper's architecture supports both timings; deferred maintenance
benefits from the Section 5 log folding (a tuple modified k times in a
batch yields one effective diff row).  This bench quantifies the gap on
the running-example workload with re-update-heavy batches.
"""

from __future__ import annotations

from functools import lru_cache

import random

from conftest import write_bench_json

from repro.bench import format_table
from repro.core.eager import EagerIvmEngine
from repro.workloads import DevicesConfig, build_aggregate_view, build_devices_database

CONFIG = DevicesConfig(n_parts=400, n_devices=400, diff_size=50)
TOUCHES = 200      # raw modifications per batch
HOT_PARTS = 50     # drawn from this many parts -> ~4 touches per part


def _run(eager: bool) -> int:
    rng = random.Random(99)
    db = build_devices_database(CONFIG)
    engine = EagerIvmEngine(db)
    engine.define_view("Vp", build_aggregate_view(db, CONFIG))

    def touch():
        pid = f"P{rng.randrange(HOT_PARTS)}"
        row = db.table("parts").get_uncounted((pid,))
        engine.update("parts", (pid,), {"price": row[1] + 1})

    if eager:
        for _ in range(TOUCHES):
            touch()
    else:
        with engine.transaction():
            for _ in range(TOUCHES):
                touch()
    return engine.total_cost()


@lru_cache(maxsize=1)
def measurements():
    return {"eager": _run(True), "deferred": _run(False)}


def test_eager_vs_deferred(benchmark):
    results = measurements()
    rows = [(mode, cost) for mode, cost in results.items()]
    rows.append(("folding benefit", f"{results['eager'] / results['deferred']:.2f}x"))
    print()
    print("== Eager vs deferred maintenance (200 hot-key updates) ==")
    print(format_table(("mode", "accesses"), rows))
    # Deferred folding collapses ~4 touches per part into one diff row.
    assert results["deferred"] < results["eager"]
    assert results["eager"] / results["deferred"] > 2.0
    write_bench_json(
        "eager_vs_deferred",
        {
            "accesses": results,
            "folding_benefit": results["eager"] / results["deferred"],
        },
    )
    benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
