"""Shard-parallel maintenance scaling at N ∈ {1, 2, 4, 8} shards.

What this measures — and what it honestly cannot.  The devices flat view
under price updates routes *parallel* (anchor ``parts``), so the sharded
engine runs N workers over disjoint i-diff row partitions.  On CPython
the workers share the GIL (and this container has one CPU), so
**wall-clock speedup is not achievable here and is reported without any
assertion on it**.  The metric that *is* asserted is the access-count
critical path — the busiest shard's total, i.e. the cost a worker would
pay on real parallel hardware.  Correctness is asserted in full: view
contents byte-identical across every shard count and equal to the
recompute oracle, and the merged per-phase access counts of every N
reconciling exactly with the single-shard run (no duplicated, no lost
work).
"""

from __future__ import annotations

import time
from functools import lru_cache

from conftest import write_bench_json

from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine, ShardedEngine
from repro.workloads import DevicesConfig, apply_price_updates, build_devices_database
from repro.workloads.devices import build_flat_view

SHARD_COUNTS = (1, 2, 4, 8)

CONFIG = DevicesConfig(n_parts=800, n_devices=800, diff_size=160)


def _run_once(n_shards: int):
    """One maintenance round of the flat view at *n_shards* shards."""
    db = build_devices_database(CONFIG)
    if n_shards == 0:  # the plain (unsharded) engine, as the oracle run
        engine = IdIvmEngine(db)
    else:
        engine = ShardedEngine(db, shards=n_shards)
    view = engine.define_view("V", build_flat_view(db, CONFIG))
    apply_price_updates(engine, db, CONFIG)
    started = time.perf_counter()
    report = engine.maintain()["V"]
    wall = time.perf_counter() - started
    oracle = evaluate_plan(view.plan, db).as_set()
    return {
        "report": report,
        "wall_seconds": wall,
        "rows": sorted(view.table.rows_uncounted()),
        "correct": view.table.as_set() == oracle,
    }


def _phase_totals(report) -> dict[str, dict[str, int]]:
    """Zero-filtered per-phase breakdown, comparable across engines."""
    return {
        name: counts.as_dict()
        for name, counts in report.phase_counts.items()
        if counts.total or counts.index_maintenance
    }


@lru_cache(maxsize=1)
def scaling():
    baseline = _run_once(0)
    points = {}
    for n in SHARD_COUNTS:
        run = _run_once(n)
        report = run["report"]
        per_shard = [r.total_cost for r in report.shard_reports]
        points[n] = {
            "run": run,
            "parallel": report.parallel,
            "anchor": report.anchor,
            "broadcast_reason": report.broadcast_reason,
            "merged_total": report.total_cost,
            "per_shard_totals": per_shard,
            "critical_path": report.critical_path(),
            "wall_seconds": run["wall_seconds"],
        }
    return baseline, points


def _print_table():
    baseline, points = scaling()
    print()
    print(f"parallel shards — devices flat view, d={CONFIG.diff_size} "
          f"(baseline total {baseline['report'].total_cost} accesses)")
    print(f"{'N':>2}  {'route':>9}  {'total':>6}  {'critical':>8}  "
          f"{'scale':>6}  {'wall_s':>8}  per-shard")
    for n in SHARD_COUNTS:
        p = points[n]
        route = f"par:{p['anchor']}" if p["parallel"] else "broadcast"
        scale = p["merged_total"] / max(p["critical_path"], 1)
        print(f"{n:>2}  {route:>9}  {p['merged_total']:>6}  "
              f"{p['critical_path']:>8}  {scale:>6.2f}  "
              f"{p['wall_seconds']:>8.4f}  {p['per_shard_totals']}")


def _assert_scaling():
    baseline, points = scaling()
    assert baseline["correct"], "unsharded engine produced a wrong view"
    base_total = baseline["report"].total_cost
    base_phases = _phase_totals(baseline["report"])
    for n in SHARD_COUNTS:
        p = points[n]
        run = p["run"]
        assert run["correct"], f"N={n}: view does not match the oracle"
        assert run["rows"] == baseline["rows"], f"N={n}: view contents differ"
        # Exact access-count reconciliation: merged shard counts equal
        # the single-shard run, phase by phase.
        assert p["merged_total"] == base_total, (
            f"N={n}: merged total {p['merged_total']} != baseline {base_total}"
        )
        assert _phase_totals(run["report"]) == base_phases, (
            f"N={n}: per-phase counts do not reconcile"
        )
        if n >= 2:
            assert p["parallel"], (
                f"N={n}: flat view should route parallel, "
                f"got broadcast ({p['broadcast_reason']})"
            )
            assert sum(p["per_shard_totals"]) == base_total
    # The honest scaling claim: at 4 shards the busiest shard carries
    # substantially less than the whole round.
    assert points[4]["critical_path"] <= 0.6 * base_total, (
        f"critical path {points[4]['critical_path']} not < 60% of {base_total}"
    )
    assert points[8]["critical_path"] <= points[1]["critical_path"]


def test_parallel_shards(benchmark):
    _print_table()
    _assert_scaling()
    baseline, points = scaling()
    write_bench_json(
        "parallel_shards",
        {
            "workload": "devices flat view, price updates",
            "config": {
                "n_parts": CONFIG.n_parts,
                "n_devices": CONFIG.n_devices,
                "diff_size": CONFIG.diff_size,
            },
            "note": (
                "wall_seconds is informational only: CPython's GIL (and a "
                "single-CPU container) serializes the workers; critical_path "
                "(max per-shard accesses) is the asserted scaling metric"
            ),
            "baseline_total": baseline["report"].total_cost,
            "points": [
                {
                    "shards": n,
                    "parallel": points[n]["parallel"],
                    "anchor": points[n]["anchor"],
                    "merged_total": points[n]["merged_total"],
                    "per_shard_totals": points[n]["per_shard_totals"],
                    "critical_path": points[n]["critical_path"],
                    "scale_factor": round(
                        points[n]["merged_total"]
                        / max(points[n]["critical_path"], 1),
                        3,
                    ),
                    "wall_seconds": round(points[n]["wall_seconds"], 6),
                }
                for n in SHARD_COUNTS
            ],
        },
    )

    def setup():
        db = build_devices_database(CONFIG)
        engine = ShardedEngine(db, shards=4)
        engine.define_view("V", build_flat_view(db, CONFIG))
        apply_price_updates(engine, db, CONFIG)
        return (engine,), {}

    benchmark.pedantic(lambda engine: engine.maintain(), setup=setup, rounds=3)
