"""Shard-parallel maintenance scaling, thread AND process backends.

What this measures — and what it honestly can and cannot.  The devices
flat view under price updates routes *parallel* (anchor ``parts``)
every round, so the sharded engine runs N workers over disjoint i-diff
row partitions.

* **Thread backend**: workers share the coordinator's GIL, so on
  CPython wall-clock speedup is structurally unavailable; the asserted
  scaling metric is the access-count *critical path* (the busiest
  shard's total — the cost a worker pays on real parallel hardware).
* **Process backend**: long-lived worker processes each own their
  anchor-key row subsets and execute on their own interpreter, so
  wall-clock speedup *is* achievable — but only with real cores.  The
  ``>= 1.5x at 4 shards`` assertion is therefore gated on
  ``effective_cpus >= 4`` (``os.sched_getaffinity``); on smaller hosts
  the measurement is still recorded, just not asserted.

Correctness is asserted in full on every backend: view contents
byte-identical across every (backend, shard count) and equal to the
recompute oracle, and merged per-phase access counts reconciling
*exactly* with the single-shard run — no duplicated, no lost work.

Per-round wall clocks are recorded as ``unit="seconds"`` LogHistograms
(one per backend/shard-count point), which the perf gate compares with
its wall slack while holding the observation counts exact.
"""

from __future__ import annotations

import os
import statistics
import time
from functools import lru_cache

from conftest import write_bench_json

from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine, ShardedEngine
from repro.obs.hist import LogHistogram
from repro.workloads import DevicesConfig, apply_price_updates, build_devices_database
from repro.workloads.devices import build_flat_view

#: (backend, shard count) measurement grid.  The process backend stops
#: at 4 shards: spawning 8 interpreters on small CI hosts costs more
#: than the extra data point tells us.
POINTS = tuple(
    [("thread", n) for n in (1, 2, 4, 8)] + [("process", n) for n in (1, 2, 4)]
)

#: Maintenance rounds per point.  Round 0 pays one-time costs (process
#: pool spawn + blueprint boot), so warm-round statistics use rounds 1+.
ROUNDS = 4

#: Large enough that a warm maintenance round costs tens of
#: milliseconds — per-round ∆-script work must dominate the process
#: backend's wire/IPC overhead for the speedup measurement to be about
#: parallelism rather than serialization.
CONFIG = DevicesConfig(n_parts=2400, n_devices=2400, diff_size=480)

EFFECTIVE_CPUS = len(os.sched_getaffinity(0))

#: Required warm wall-clock speedup of the 4-shard process backend over
#: the single-shard engine — asserted only with >= 4 usable cores.
SPEEDUP_TARGET = 1.5


def _run_rounds(engine_factory):
    """ROUNDS maintenance rounds of the flat view on a fresh engine."""
    db = build_devices_database(CONFIG)
    engine = engine_factory(db)
    try:
        view = engine.define_view("V", build_flat_view(db, CONFIG))
        rounds = []
        for r in range(ROUNDS):
            apply_price_updates(engine, db, CONFIG, round_seed=r)
            started = time.perf_counter()
            report = engine.maintain()["V"]
            wall = time.perf_counter() - started
            rounds.append({"report": report, "wall_seconds": wall})
        oracle = evaluate_plan(view.plan, db).as_set()
        return {
            "rounds": rounds,
            "rows": sorted(view.table.rows_uncounted()),
            "correct": view.table.as_set() == oracle,
        }
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def _phase_totals(report) -> dict[str, dict[str, int]]:
    """Zero-filtered per-phase breakdown, comparable across engines."""
    return {
        name: counts.as_dict()
        for name, counts in report.phase_counts.items()
        if counts.total or counts.index_maintenance
    }


def _wall_hist(run, label: str) -> LogHistogram:
    hist = LogHistogram(f"bench.parallel_shards.{label}", unit="seconds")
    for r in run["rounds"]:
        hist.observe(r["wall_seconds"])
    return hist


def _warm_wall(run) -> float:
    return statistics.median(r["wall_seconds"] for r in run["rounds"][1:])


@lru_cache(maxsize=1)
def scaling():
    baseline = _run_rounds(IdIvmEngine)
    points = {}
    for backend, n in POINTS:
        run = _run_rounds(
            lambda db, n=n, backend=backend: ShardedEngine(
                db, shards=n, backend=backend
            )
        )
        last = run["rounds"][-1]["report"]
        points[(backend, n)] = {
            "run": run,
            "parallel": last.parallel,
            "anchor": last.anchor,
            "broadcast_reason": last.broadcast_reason,
            "merged_total": sum(r["report"].total_cost for r in run["rounds"]),
            "per_shard_totals": [r.total_cost for r in last.shard_reports],
            "critical_path": last.critical_path(),
            "last_round_total": last.total_cost,
            "warm_wall": _warm_wall(run),
        }
    return baseline, points


def _print_table():
    baseline, points = scaling()
    base_warm = _warm_wall(baseline)
    print()
    print(
        f"parallel shards — devices flat view, d={CONFIG.diff_size}, "
        f"{ROUNDS} rounds, {EFFECTIVE_CPUS} cpu(s) "
        f"(single-shard warm round {base_warm:.4f}s)"
    )
    print(
        f"{'backend':>8} {'N':>2}  {'route':>9}  {'total':>6}  "
        f"{'critical':>8}  {'warm_s':>8}  {'speedup':>7}"
    )
    for (backend, n), p in points.items():
        route = f"par:{p['anchor']}" if p["parallel"] else "broadcast"
        speedup = base_warm / max(p["warm_wall"], 1e-9)
        print(
            f"{backend:>8} {n:>2}  {route:>9}  {p['merged_total']:>6}  "
            f"{p['critical_path']:>8}  {p['warm_wall']:>8.4f}  {speedup:>6.2f}x"
        )


def _assert_scaling():
    baseline, points = scaling()
    assert baseline["correct"], "single-shard engine produced a wrong view"
    base_total = sum(r["report"].total_cost for r in baseline["rounds"])
    for (backend, n), p in points.items():
        run = p["run"]
        label = f"{backend} N={n}"
        assert run["correct"], f"{label}: view does not match the oracle"
        assert run["rows"] == baseline["rows"], f"{label}: view contents differ"
        # Exact access-count reconciliation, round by round and phase by
        # phase: the merged shard counts equal the single-shard run.
        for r, (shard_round, base_round) in enumerate(
            zip(run["rounds"], baseline["rounds"])
        ):
            assert _phase_totals(shard_round["report"]) == _phase_totals(
                base_round["report"]
            ), f"{label}: round {r} per-phase counts do not reconcile"
        assert p["merged_total"] == base_total, (
            f"{label}: total {p['merged_total']} != baseline {base_total}"
        )
        if n >= 2:
            assert p["parallel"], (
                f"{label}: flat view should route parallel, "
                f"got broadcast ({p['broadcast_reason']})"
            )
            assert sum(p["per_shard_totals"]) == p["last_round_total"]
            report = run["rounds"][-1]["report"]
            assert report.backend == backend
            assert report.shard_wall_hist is not None
            assert report.shard_wall_hist.count == n
    # The access-count scaling claim (machine-independent): at 4 shards
    # the busiest shard carries substantially less than the whole round.
    last_total = points[("thread", 4)]["last_round_total"]
    for backend in ("thread", "process"):
        critical = points[(backend, 4)]["critical_path"]
        assert critical <= 0.6 * last_total, (
            f"{backend}: critical path {critical} not < 60% of {last_total}"
        )
    # The wall-clock claim (needs real cores): the 4-shard process
    # backend beats the single-shard engine by >= 1.5x on warm rounds.
    if EFFECTIVE_CPUS >= 4:
        base_warm = _warm_wall(baseline)
        proc_warm = points[("process", 4)]["warm_wall"]
        speedup = base_warm / max(proc_warm, 1e-9)
        assert speedup >= SPEEDUP_TARGET, (
            f"process backend speedup {speedup:.2f}x < {SPEEDUP_TARGET}x "
            f"at 4 shards with {EFFECTIVE_CPUS} cpus"
        )


def test_parallel_shards(benchmark):
    _print_table()
    _assert_scaling()
    baseline, points = scaling()
    base_warm = _warm_wall(baseline)
    write_bench_json(
        "parallel_shards",
        {
            "workload": "devices flat view, price updates",
            "config": {
                "n_parts": CONFIG.n_parts,
                "n_devices": CONFIG.n_devices,
                "diff_size": CONFIG.diff_size,
                "rounds": ROUNDS,
            },
            "effective_cpus": EFFECTIVE_CPUS,
            "note": (
                "per-point wall_hist is a unit=seconds LogHistogram over "
                "per-round maintenance walls (round 0 includes process pool "
                "spawn); wall_speedup = single-shard warm median / this "
                "point's warm median, asserted >= 1.5x for process N=4 only "
                "when effective_cpus >= 4; access counts are asserted "
                "machine-independently"
            ),
            "baseline": {
                "total": sum(r["report"].total_cost for r in baseline["rounds"]),
                "wall_hist": _wall_hist(baseline, "single").as_dict(),
            },
            "points": [
                {
                    "backend": backend,
                    "shards": n,
                    "parallel": p["parallel"],
                    "anchor": p["anchor"],
                    "merged_total": p["merged_total"],
                    "last_round_total": p["last_round_total"],
                    "per_shard_totals": p["per_shard_totals"],
                    "critical_path": p["critical_path"],
                    "scale_factor": round(
                        p["last_round_total"] / max(p["critical_path"], 1), 3
                    ),
                    "wall_hist": _wall_hist(
                        p["run"], f"{backend}.{n}"
                    ).as_dict(),
                    "wall_speedup": round(
                        base_warm / max(p["warm_wall"], 1e-9), 3
                    ),
                }
                for (backend, n), p in points.items()
            ],
        },
    )

    def setup():
        db = build_devices_database(CONFIG)
        engine = ShardedEngine(db, shards=4)
        engine.define_view("V", build_flat_view(db, CONFIG))
        apply_price_updates(engine, db, CONFIG)
        return (engine,), {}

    benchmark.pedantic(lambda engine: engine.maintain(), setup=setup, rounds=3)
