"""Figure 12d: varying the fanout f ∈ {5..25} of (parts, devices_parts).

Paper's finding: ID-based IVM beats tuple-based by a steady 4–5x across
the whole fanout range (both costs scale with f, so the ratio is flat,
with a mild decline as the shared view-update component grows).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import (
    BASE_CONFIG,
    SYSTEMS,
    run_devices_point,
    timing_subject,
    write_bench_json,
)

from repro.bench import format_sweep
from repro.workloads import DevicesConfig

FANOUTS = (5, 10, 15, 20, 25)


@lru_cache(maxsize=1)
def sweep():
    points = []
    for f in FANOUTS:
        config = DevicesConfig(**{**BASE_CONFIG, "fanout": f})
        point = run_devices_point(config, systems=("idIVM", "tuple"))
        point.parameter = f
        points.append(point)
    return points


def _print_table():
    print()
    print(
        format_sweep(
            "Figure 12d — varying fanout f (accesses)",
            "f",
            sweep(),
            systems=("idIVM", "tuple"),
            phases=("cache_update", "view_diff", "view_update"),
        )
    )


def _assert_shape():
    points = sweep()
    speedups = [p.speedup() for p in points]
    # The band is steady: every point within 2.5-8x, max/min ratio small.
    assert all(2.5 <= s <= 8.0 for s in speedups), speedups
    assert max(speedups) / min(speedups) <= 1.8, speedups
    # Both systems' absolute costs grow with the fanout.
    for label in ("idIVM", "tuple"):
        costs = [p.results[label].total_cost for p in points]
        assert all(b > a for a, b in zip(costs, costs[1:])), (label, costs)


def test_fig12d_id_based(benchmark, timing_config):
    _print_table()
    _assert_shape()
    write_bench_json("fig12d_fanout", {"parameter": "f", "points": sweep()})
    setup, target = timing_subject(timing_config, SYSTEMS["idIVM"])
    benchmark.pedantic(target, setup=setup, rounds=3)


def test_fig12d_tuple_based(benchmark, timing_config):
    setup, target = timing_subject(timing_config, SYSTEMS["tuple"])
    benchmark.pedantic(target, setup=setup, rounds=3)
