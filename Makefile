PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) -m repro demo --trace /tmp/repro_trace.jsonl
	$(PYTHON) -m repro.obs.trace /tmp/repro_trace.jsonl

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-disable -q
