PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-sharded smoke smoke-obs bench perf-gate fuzz lint \
	lint-catalog lint-static

test:
	$(PYTHON) -m pytest -x -q

# Equivalence tests at an explicit shard count and backend set (the CI
# matrix legs): REPRO_SHARDS=1,4 REPRO_BACKEND=process make test-sharded
# REPRO_RACE_CHECK=strict arms the dynamic write-set race detector on
# every engine the suite builds (overlaps raise ShardRaceError).
REPRO_SHARDS ?= 1,2,4,8
REPRO_BACKEND ?= thread,process
REPRO_RACE_CHECK ?=
test-sharded:
	REPRO_SHARDS=$(REPRO_SHARDS) REPRO_BACKEND=$(REPRO_BACKEND) \
	    REPRO_RACE_CHECK=$(REPRO_RACE_CHECK) \
	    $(PYTHON) -m pytest tests/test_sharded.py -x -q

smoke:
	$(PYTHON) -m repro demo --trace /tmp/repro_trace.jsonl
	$(PYTHON) -m repro.obs.trace /tmp/repro_trace.jsonl
	$(PYTHON) -m repro demo --shards 4
	$(PYTHON) -m pytest benchmarks/bench_parallel_shards.py --benchmark-disable -q

# Observability smoke: boot the live telemetry endpoint (DemoLoop +
# ThreadingHTTPServer), scrape /metrics /snapshot /freshness /healthz
# over real HTTP, validate the Prometheus exposition, and leave the
# freshness report at OBS_FRESHNESS (uploaded as a CI artifact).  Also
# renders one `repro top` frame so the dashboard path stays exercised.
OBS_FRESHNESS ?= /tmp/repro_freshness.json
smoke-obs:
	$(PYTHON) -m repro.obs.smoke --out $(OBS_FRESHNESS)
	$(PYTHON) -m repro top --once --no-clear --users 60 --updates 12

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-disable -q

# Perf-regression gate: re-run the fast access-count benchmarks and
# diff each fresh BENCH_*.json against benchmarks/baselines/.  Access
# counts must match exactly (they are deterministic); wall times gate
# with a one-sided slack factor (REPRO_PERF_GATE_SLACK, default 3x).
PERF_GATE_BENCHES = \
    benchmarks/bench_table2_spj_costs.py \
    benchmarks/bench_table3_agg_costs.py \
    benchmarks/bench_speedup_model.py \
    benchmarks/bench_eager_vs_deferred.py \
    benchmarks/bench_minimization.py \
    benchmarks/bench_parallel_shards.py \
    benchmarks/bench_compiled.py \
    benchmarks/bench_catalog_lint.py
perf-gate:
	REPRO_PERF_GATE=1 $(PYTHON) -m pytest $(PERF_GATE_BENCHES) --benchmark-disable -q

# Domain lint: the repro.analysis static verifier over every shipped
# workload view.  Exits non-zero on error-severity diagnostics.
lint:
	$(PYTHON) -m repro lint

# Catalog-scale lint: the deterministic thousand-view catalog through
# the incremental analysis cache (.repro-cache/) and the catalog-scope
# sharing pass.  A second run is warm — CI uploads the cache artifact.
lint-catalog:
	$(PYTHON) -m repro lint --catalog

# Conventional static checks (ruff + mypy, configured in pyproject).
# Both are optional in the dev container; absent tools are skipped so
# the target stays green locally and strict in CI (which installs them).
lint-static:
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
	else echo "ruff not installed; skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipping"; fi

# Differential fuzz: every strategy vs the recompute oracle.  Divergent
# cases are shrunk and saved into tests/regressions/; non-zero exit.
FUZZ_SEED ?= 0
FUZZ_CASES ?= 100
fuzz:
	$(PYTHON) -m repro crosscheck --seed $(FUZZ_SEED) --cases $(FUZZ_CASES)
