"""Quickstart: the paper's running example, end to end.

Builds the devices/parts database of Figure 1, defines the views V
(Figure 1b) and V' (Figure 5b) from their SQL text, prints the generated
∆-script (the Figure 7 shape), performs the Figure 2 price update and
maintains the views, reporting the access costs.

Run with:  python examples/quickstart.py
"""

from repro.core import IdIvmEngine
from repro.sql import sql_to_plan
from repro.storage import Database


def build_database() -> Database:
    db = Database()
    db.create_table("devices", ("did", "category"), ("did",))
    db.create_table("parts", ("pid", "price"), ("pid",))
    db.create_table("devices_parts", ("did", "pid"), ("did", "pid"))
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    db.add_foreign_key("devices_parts", ("did",), "devices")
    db.add_foreign_key("devices_parts", ("pid",), "parts")
    return db


def main() -> None:
    db = build_database()
    engine = IdIvmEngine(db)

    # Figure 1b — the flat view.
    v = engine.define_view(
        "V",
        sql_to_plan(
            db,
            """
            SELECT did, pid, price
            FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
            WHERE category = 'phone'
            """,
        ),
    )
    # Figure 5b — the aggregate extension.
    v_prime = engine.define_view(
        "V_prime",
        sql_to_plan(
            db,
            """
            SELECT did, SUM(price) AS cost
            FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
            WHERE category = 'phone'
            GROUP BY did
            """,
        ),
    )

    print("Initial V:       ", sorted(v.table.as_set()))
    print("Initial V_prime: ", sorted(v_prime.table.as_set()))
    print()
    print("Generated ∆-script for V_prime (compare with the paper's Figure 7):")
    print(v_prime.describe_script())
    print()

    # The Figure 2 modification: part P1's price goes from 10 to 11.
    engine.log.update("parts", ("P1",), {"price": 11})
    reports = engine.maintain()

    print("After updating P1's price 10 -> 11:")
    print("V:       ", sorted(v.table.as_set()))
    print("V_prime: ", sorted(v_prime.table.as_set()))
    print()
    for name, report in reports.items():
        phases = {
            phase: counts.total
            for phase, counts in report.phase_counts.items()
            if phase != "__total__" and counts.total
        }
        print(
            f"maintenance cost of {name}: {report.total_cost} accesses {phases}"
        )
    print()
    print(
        "Note: V's single i-diff row updated TWO view tuples (the i-diff\n"
        "compression of Figure 2) and computing it touched no base table."
    )


if __name__ == "__main__":
    main()
