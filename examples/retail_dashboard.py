"""Retail dashboard: a richer IVM scenario exercising the full QSPJADU
operator set — avg/count aggregates, union all, antisemijoin — under a
mixed insert/update/delete order stream.

Views maintained:

* ``category_stats``  — per-category revenue, order count and average
  price (sum/count/avg with operator caches, Table 12);
* ``alerts``          — union of big orders and premium-product orders
  (union all with the branch attribute);
* ``idle_products``   — products with no orders at all (antisemijoin).

Run with:  python examples/retail_dashboard.py
"""

import random

from repro.algebra import (
    AntiJoin,
    UnionAll,
    equi_join,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from repro.algebra.evaluate import evaluate_plan
from repro.core import IdIvmEngine
from repro.expr import col, lit
from repro.storage import Database

SEED = 11


def build_database() -> Database:
    rng = random.Random(SEED)
    db = Database()
    db.create_table("products", ("sku", "category", "price"), ("sku",))
    db.create_table("orders", ("oid", "sku", "qty"), ("oid",))
    categories = ("audio", "video", "home", "wearables")
    db.table("products").load(
        (f"S{i}", categories[i % len(categories)], rng.randint(5, 200))
        for i in range(120)
    )
    db.table("orders").load(
        (i, f"S{rng.randrange(100)}", rng.randint(1, 5)) for i in range(400)
    )
    db.add_foreign_key("orders", ("sku",), "products")
    return db


def category_stats(db: Database):
    products = rename(scan(db, "products"), {"sku": "p_sku"})
    joined = equi_join(scan(db, "orders"), products, [("sku", "p_sku")])
    priced = project_columns(
        joined, ("oid", "sku", "qty", "category", "price")
    )
    from repro.algebra import Project

    with_revenue = Project(
        priced,
        [
            ("oid", col("oid")),
            ("sku", col("sku")),
            ("category", col("category")),
            ("price", col("price")),
            ("revenue", col("price") * col("qty")),
        ],
    )
    return group_by(
        with_revenue,
        ("category",),
        [
            ("sum", col("revenue"), "revenue"),
            ("count", None, "n_orders"),
            ("avg", col("price"), "avg_price"),
        ],
    )


def alerts(db: Database):
    products = rename(scan(db, "products"), {"sku": "p_sku"})
    joined = project_columns(
        equi_join(scan(db, "orders"), products, [("sku", "p_sku")]),
        ("oid", "sku", "qty", "price"),
    )
    big_orders = where(joined, col("qty").ge(lit(4)))
    premium = where(joined, col("price").ge(lit(150)))
    return UnionAll(big_orders, premium)


def idle_products(db: Database):
    orders = rename(scan(db, "orders"), {"sku": "o_sku", "oid": "o_oid", "qty": "o_qty"})
    return AntiJoin(scan(db, "products"), orders, col("sku").eq(col("o_sku")))


def main() -> None:
    db = build_database()
    engine = IdIvmEngine(db)
    views = {
        "category_stats": engine.define_view("category_stats", category_stats(db)),
        "alerts": engine.define_view("alerts", alerts(db)),
        "idle_products": engine.define_view("idle_products", idle_products(db)),
    }
    print("Initial category stats:")
    for row in sorted(views["category_stats"].table.as_set()):
        category, revenue, n, avg_price = row
        print(f"  {category:10s} revenue={revenue:6d} orders={n:3d} avg={avg_price:7.2f}")
    print(f"idle products: {len(views['idle_products'].table)}")
    print()

    rng = random.Random(SEED + 1)
    next_oid = 400
    for day in range(1, 4):
        # A day of trading: new orders, price changes, cancellations.
        for _ in range(30):
            engine.log.insert(
                "orders", (next_oid, f"S{rng.randrange(120)}", rng.randint(1, 5))
            )
            next_oid += 1
        for _ in range(10):
            sku = f"S{rng.randrange(120)}"
            row = db.table("products").get_uncounted((sku,))
            engine.log.update(
                "products", (sku,), {"price": max(5, row[2] + rng.randint(-20, 20))}
            )
        live_orders = [r[0] for r in db.table("orders").rows_uncounted()]
        for oid in rng.sample(live_orders, 5):
            engine.log.delete("orders", (oid,))

        reports = engine.maintain()
        total = sum(r.total_cost for r in reports.values())
        print(f"day {day}: maintained 3 views with {total} accesses")

    print()
    print("Final category stats:")
    for row in sorted(views["category_stats"].table.as_set()):
        category, revenue, n, avg_price = row
        print(f"  {category:10s} revenue={revenue:6d} orders={n:3d} avg={avg_price:7.2f}")
    print(f"alerts: {len(views['alerts'].table)} rows")
    print(f"idle products: {len(views['idle_products'].table)}")

    # Verify everything against recomputation.
    for name, view in views.items():
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected, f"{name} diverged!"
    print("\nAll views verified against full recomputation.")


if __name__ == "__main__":
    main()
