"""Cost-model explorer: the Section 6 speedup equations, tabulated and
validated against a measured run.

Prints Equation 1 (SPJ views) and Equation 2 (aggregate views) over a
grid of (a, p) parameters, then measures a real configuration of the
running-example workload and shows that the model predicts the observed
speedup.

Run with:  python examples/cost_model_explorer.py
"""

from repro.baselines import TupleIvmEngine
from repro.bench import format_table, run_system
from repro.core import IdIvmEngine
from repro.costmodel import (
    agg_update_speedup,
    estimate_a_for_chain,
    estimate_p_for_chain,
    spj_update_speedup,
)
from repro.workloads import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_devices_database,
)


def print_model_grids() -> None:
    p_values = (0.5, 1, 2, 4, 8)
    a_values = (2, 5, 10, 25, 50)
    rows = []
    for a in a_values:
        rows.append([a] + [round(spj_update_speedup(a, p), 2) for p in p_values])
    print("Equation 1 — SPJ speedup (rows: a, columns: p)")
    print(format_table(["a \\ p"] + [str(p) for p in p_values], rows))
    print()
    rows = []
    for a in a_values:
        rows.append([a] + [round(agg_update_speedup(a, p), 2) for p in p_values])
    print("Equation 2 — aggregate speedup with cache (g = 1)")
    print(format_table(["a \\ p"] + [str(p) for p in p_values], rows))
    print()


def validate_against_measurement() -> None:
    config = DevicesConfig(n_parts=500, n_devices=500, diff_size=80)
    results = {}
    for label, engine_cls in (("idIVM", IdIvmEngine), ("tuple", TupleIvmEngine)):
        results[label] = run_system(
            label,
            db_factory=lambda: build_devices_database(config),
            make_engine=engine_cls,
            build_view=lambda db: build_aggregate_view(db, config),
            log_modifications=lambda engine, db: apply_price_updates(
                engine, db, config
            ),
        )
    d = config.diff_size
    p = (results["idIVM"].phase("cache_update") - d) / d
    pg = results["idIVM"].phase("view_update") / 2 / d
    a = results["tuple"].phase("view_diff") / d
    predicted = agg_update_speedup(a, p, pg / p)
    observed = results["tuple"].total_cost / results["idIVM"].total_cost

    # A rough a-priori estimate from the workload parameters alone.
    estimated_a = estimate_a_for_chain([config.fanout, 1])
    estimated_p = estimate_p_for_chain([config.fanout], config.selectivity)

    print("Measured configuration:", config)
    print(f"  measured   a = {a:.2f}   p = {p:.2f}")
    print(f"  estimated  a = {estimated_a:.2f}   p = {estimated_p:.2f}")
    print(f"  predicted speedup (Eq. 2) = {predicted:.2f}")
    print(f"  observed  speedup         = {observed:.2f}")


def main() -> None:
    print_model_grids()
    validate_against_measurement()


if __name__ == "__main__":
    main()
