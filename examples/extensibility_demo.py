"""Extensibility demo: the semijoin operator, end to end.

The paper's modularity claim (Section 4) is that supporting a new
relational operator only takes an ID-inference rule plus a propagation
rule module.  This repository added the semijoin ⋉ that way after the
core was complete (docs/EXTENDING.md documents the recipe); this script
shows the result: a semijoin view defined, explained, and incrementally
maintained like any built-in operator.

Run with:  python examples/extensibility_demo.py
"""

from repro import query
from repro.algebra import SemiJoin, evaluate_plan, explain_plan, rename, scan
from repro.core import IdIvmEngine
from repro.expr import col
from repro.storage import Database


def build_database() -> Database:
    db = Database()
    db.create_table("products", ("sku", "name", "price"), ("sku",))
    db.create_table("orders", ("oid", "o_sku", "qty"), ("oid",))
    db.table("products").load(
        [
            ("A1", "amplifier", 120),
            ("B2", "breadboard", 8),
            ("C3", "capacitor kit", 15),
            ("D4", "dev board", 45),
        ]
    )
    db.table("orders").load([(1, "A1", 1), (2, "C3", 3), (3, "C3", 1)])
    return db


def main() -> None:
    db = build_database()
    engine = IdIvmEngine(db)

    # Products with at least one order — a semijoin view.
    plan = SemiJoin(
        scan(db, "products"),
        rename(scan(db, "orders"), {"oid": "o_oid"}),
        col("sku").eq(col("o_sku")),
    )
    view = engine.define_view("selling_products", plan)

    print("The annotated plan (⋉ carries ID(L), like the antisemijoin):")
    print(explain_plan(view.plan))
    print()
    print("Initial view:")
    print(query(db, "SELECT * FROM products").pretty())
    print()
    print("selling_products:")
    print(_table(view))
    print()

    print(">>> a first order arrives for the dev board ...")
    engine.log.insert("orders", (4, "D4", 2))
    report = engine.maintain()["selling_products"]
    print(_table(view))
    print(f"(maintained with {report.total_cost} accesses)")
    print()

    print(">>> the capacitor kit's orders are cancelled ...")
    engine.log.delete("orders", (2,))
    engine.log.delete("orders", (3,))
    engine.maintain()
    print(_table(view))
    print()

    print(">>> and the amplifier gets a price cut (pure pass-through) ...")
    engine.log.update("products", ("A1",), {"price": 99})
    report = engine.maintain()["selling_products"]
    print(_table(view))
    print(
        f"(maintained with {report.total_cost} accesses — "
        f"no base table was consulted)"
    )

    expected = evaluate_plan(view.plan, db).as_set()
    assert view.table.as_set() == expected
    print("\nView verified against full recomputation.")


def _table(view) -> str:
    from repro.algebra import Relation

    return Relation(view.table.schema.columns, view.table.rows_uncounted()).pretty()


if __name__ == "__main__":
    main()
