"""Social-media analytics: maintaining BSMA-style views under a stream of
user-profile updates (the paper's Section 7.1 scenario).

Defines three of the benchmark views over a synthetic social network,
then runs several rounds of profile updates, maintaining the views with
both the ID-based engine and the tuple-based baseline and reporting the
per-round speedups.

Run with:  python examples/social_analytics.py
"""

from repro.algebra import evaluate_plan
from repro.baselines import TupleIvmEngine
from repro.bench import format_table
from repro.core import IdIvmEngine
from repro.workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    build_bsma_database,
    user_update_batch,
)

CONFIG = BsmaConfig(n_users=400, friends_per_user=6, n_tweets=1_600)
VIEWS = ("Q7", "Q10", "Q*1")
ROUNDS = 3
UPDATES_PER_ROUND = 50


def run_engine(engine_cls):
    db = build_bsma_database(CONFIG)
    engine = engine_cls(db)
    views = {
        name: engine.define_view(name, BSMA_QUERIES[name](db, CONFIG))
        for name in VIEWS
    }
    costs = {name: 0 for name in VIEWS}
    for round_number in range(ROUNDS):
        for (uid,), changes in user_update_batch(
            db, CONFIG, UPDATES_PER_ROUND, round_seed=round_number
        ):
            engine.log.update("users", (uid,), changes)
        reports = engine.maintain()
        for name in VIEWS:
            costs[name] += reports[name].total_cost
    # Verify every view is exact after the final round.
    for name, view in views.items():
        expected = evaluate_plan(view.plan, db).as_set()
        assert view.table.as_set() == expected, f"{name} diverged!"
    return costs


def main() -> None:
    print(
        f"Maintaining {len(VIEWS)} social-analytics views over "
        f"{CONFIG.n_users} users / {CONFIG.n_tweets} tweets,\n"
        f"{ROUNDS} rounds of {UPDATES_PER_ROUND} profile updates each.\n"
    )
    id_costs = run_engine(IdIvmEngine)
    tuple_costs = run_engine(TupleIvmEngine)
    rows = [
        (
            name,
            id_costs[name],
            tuple_costs[name],
            tuple_costs[name] / max(id_costs[name], 1),
        )
        for name in VIEWS
    ]
    print(
        format_table(
            ("view", "ID-IVM accesses", "Tuple-IVM accesses", "speedup"), rows
        )
    )
    print("\nAll views verified against full recomputation.")


if __name__ == "__main__":
    main()
